"""HTML report tests: structure, determinism, sweep aggregation."""

import json

from repro.obs.report import (
    fmt,
    load_metrics,
    render_report,
    runs_from_units,
    sparkline,
    write_report,
)

SAMPLE = {
    "counters": {},
    "gauges": {},
    "histograms": {
        "span_duration_ns{kind=fault}": {
            "count": 3,
            "sum": 3_000_000.0,
            "buckets": {"1000000": 3, "+Inf": 0},
        }
    },
    "timeline": {
        "clock_ns": 4.2e9,
        "spans": {
            "spans_closed": 3,
            "attribution": [
                {
                    "kind": "fault",
                    "order": 18,
                    "count": 3,
                    "total_ns": 3e6,
                    "self_ns": 3e6,
                    "child_ns": 0.0,
                    "mean_ns": 1e6,
                }
            ],
        },
        "sampler": {
            "interval_ms": 0.5,
            "samples": 4,
            "series": {
                "fmfi": {
                    "unit": "index",
                    "points": [[0.0, 0.9], [1.0, 0.7], [2.0, 0.4]],
                }
            },
        },
    },
}


class TestFormatting:
    def test_fmt_is_the_single_float_gate(self):
        assert fmt(None) == "-"
        assert fmt(0.123456789) == "0.123457"
        assert fmt(float("inf")) == "+Inf"
        assert fmt(float("-inf")) == "-Inf"
        assert fmt(18) == "18"

    def test_sparkline_needs_two_points(self):
        assert "not enough samples" in sparkline([])
        assert "not enough samples" in sparkline([[0.0, 1.0]])
        svg = sparkline([[0.0, 1.0], [1.0, 2.0]])
        assert svg.startswith("<svg") and "polyline" in svg

    def test_sparkline_handles_flat_series(self):
        # zero value span must not divide by zero
        svg = sparkline([[0.0, 5.0], [1.0, 5.0], [2.0, 5.0]])
        assert "<svg" in svg


class TestRenderReport:
    def test_sections_and_content(self):
        page = render_report([("GUPS / Trident", SAMPLE)])
        assert "<!doctype html>" in page
        assert "GUPS / Trident" in page
        assert "fmfi" in page
        assert "fault" in page
        assert "<svg" in page
        assert "3 spans" in page

    def test_byte_deterministic(self):
        one = render_report([("run", SAMPLE)])
        two = render_report([("run", json.loads(json.dumps(SAMPLE)))])
        assert one == two

    def test_titles_escaped(self):
        page = render_report([("<script>", SAMPLE)], title="a & b")
        assert "<script>" not in page
        assert "&lt;script&gt;" in page
        assert "a &amp; b" in page

    def test_empty_timeline_degrades_gracefully(self):
        page = render_report([("bare", {"histograms": {}})])
        assert "no spans recorded" in page
        assert "no timeline series" in page

    def test_write_report(self, tmp_path):
        path = str(tmp_path / "r.html")
        assert write_report(path, [("run", SAMPLE)]) == path
        assert load_metrics  # imported symbol stays exported
        with open(path) as f:
            assert "</html>" in f.read()


class TestRunsFromUnits:
    def _unit(self, tmp_path, unit_id, name, data):
        path = tmp_path / name
        path.write_text(json.dumps(data))
        return {"unit_id": unit_id, "metrics": [str(path)]}

    def test_sections_sorted_by_unit_id(self, tmp_path):
        units = [
            self._unit(tmp_path, "zz", "z.json", SAMPLE),
            self._unit(tmp_path, "aa", "a.json", SAMPLE),
        ]
        runs = runs_from_units(units)
        assert [title for title, _ in runs] == ["aa: a.json", "zz: z.json"]

    def test_skips_missing_unreadable_and_timeline_less(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        units = [
            {"unit_id": "gone", "metrics": [str(tmp_path / "nope.json")]},
            {"unit_id": "bad", "metrics": [str(bad)]},
            self._unit(tmp_path, "plain", "plain.json", {"counters": {}}),
            self._unit(tmp_path, "ok", "ok.json", SAMPLE),
        ]
        runs = runs_from_units(units)
        assert [title for title, _ in runs] == ["ok: ok.json"]

    def test_empty_units(self):
        assert runs_from_units([]) == []
