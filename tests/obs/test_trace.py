"""Unit tests for the bounded structured-event tracer."""

import json

import pytest

from repro.obs import Observability
from repro.obs.trace import SUBSYSTEMS, Tracer


class TestGating:
    def test_disabled_subsystem_is_noop(self):
        tr = Tracer(subsystems=("buddy",))
        tr.emit("tlb", "walk", cycles=40)
        assert len(tr) == 0
        assert tr.emitted == 0

    def test_inactive_until_enabled(self):
        tr = Tracer()
        assert not tr.active
        tr.enable("buddy")
        assert tr.active
        tr.disable("buddy")
        assert not tr.active

    def test_enable_all_covers_every_subsystem(self):
        tr = Tracer()
        tr.enable_all()
        assert tr.enabled_subsystems == frozenset(SUBSYSTEMS)

    def test_disable_no_args_clears_everything(self):
        tr = Tracer(subsystems=SUBSYSTEMS)
        tr.disable()
        assert not tr.active


class TestRingBuffer:
    def test_oldest_events_dropped_at_capacity(self):
        tr = Tracer(capacity=3, subsystems=("buddy",))
        for i in range(5):
            tr.emit("buddy", "alloc", pfn=i)
        assert len(tr) == 3
        assert tr.emitted == 5
        assert tr.dropped == 2
        assert [e["pfn"] for e in tr.events()] == [2, 3, 4]

    def test_seq_is_monotonic_across_overflow(self):
        tr = Tracer(capacity=2, subsystems=("buddy",))
        for i in range(4):
            tr.emit("buddy", "alloc", pfn=i)
        seqs = [e["seq"] for e in tr.events()]
        assert seqs == [3, 4]

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)

    def test_clear_resets_counts(self):
        tr = Tracer(subsystems=("buddy",))
        tr.emit("buddy", "alloc")
        tr.clear()
        assert len(tr) == 0
        assert tr.emitted == 0
        assert tr.summary()["events"] == {}


class TestReadSide:
    def test_events_filter_by_subsystem_and_event(self):
        tr = Tracer(subsystems=("buddy", "tlb"))
        tr.emit("buddy", "alloc", pfn=1)
        tr.emit("buddy", "free", pfn=1)
        tr.emit("tlb", "walk", cycles=40)
        assert len(list(tr.events("buddy"))) == 2
        assert len(list(tr.events("buddy", "free"))) == 1
        assert len(list(tr.events(event="walk"))) == 1

    def test_summary_tallies_survive_overflow(self):
        tr = Tracer(capacity=1, subsystems=("buddy",))
        for _ in range(10):
            tr.emit("buddy", "alloc")
        assert tr.summary()["events"] == {"buddy:alloc": 10}
        assert tr.summary()["buffered"] == 1

    def test_export_jsonl(self, tmp_path):
        tr = Tracer(subsystems=("zerofill",))
        tr.emit("zerofill", "fill", pfn=64, cost_ns=1.5)
        path = str(tmp_path / "t.jsonl")
        assert tr.export_jsonl(path) == 1
        record = json.loads(open(path).readline())
        assert record["subsystem"] == "zerofill"
        assert record["event"] == "fill"
        assert record["pfn"] == 64


class TestObservabilityBundle:
    def test_all_expands_to_every_subsystem(self):
        obs = Observability(trace_subsystems="all")
        assert obs.tracer.enabled_subsystems == frozenset(SUBSYSTEMS)

    def test_default_is_disabled(self):
        obs = Observability()
        assert not obs.tracer.active

    def test_write_metrics_json_includes_trace_health(self, tmp_path):
        obs = Observability(trace_subsystems=("buddy",))
        obs.tracer.emit("buddy", "alloc", pfn=0)
        path = str(tmp_path / "m.json")
        obs.write_metrics_json(path)
        data = json.loads(open(path).read())
        assert data["trace"]["emitted"] == 1


class TestReservedFields:
    """Regression: fields named like the envelope used to silently
    overwrite ``seq``/``ts_ns``/``subsystem``/``event`` in ``events()``."""

    def test_emit_rejects_envelope_shadowing(self):
        tr = Tracer(subsystems=("buddy",))
        for bad in ("seq", "ts_ns", "subsystem", "event"):
            with pytest.raises(ValueError, match="shadow the trace envelope"):
                tr.emit("buddy", "alloc", **{bad: 1})

    def test_emit_at_rejects_envelope_shadowing(self):
        tr = Tracer(subsystems=("span",))
        with pytest.raises(ValueError, match="shadow the trace envelope"):
            tr.emit_at(5.0, "span", "fault", event="shadowed")

    def test_gated_off_emit_stays_cheap_noop(self):
        # the disabled path keeps its near-zero cost: no validation runs
        tr = Tracer(subsystems=("buddy",))
        tr.emit("tlb", "walk", seq=9)
        assert tr.emitted == 0

    def test_envelope_survives_ordinary_fields(self):
        tr = Tracer(subsystems=("buddy",))
        tr.emit("buddy", "alloc", order=4)
        (event,) = list(tr.events())
        assert event["subsystem"] == "buddy"
        assert event["event"] == "alloc"
        assert event["order"] == 4


class TestClockStamping:
    def test_events_stamped_with_simulated_time(self):
        from repro.obs.clock import SimClock

        clock = SimClock()
        tr = Tracer(subsystems=("buddy",), clock=clock)
        tr.emit("buddy", "alloc")
        clock.advance(123.0)
        tr.emit("buddy", "free")
        first, second = list(tr.events())
        assert first["ts_ns"] == 0.0
        assert second["ts_ns"] == 123.0

    def test_clockless_tracer_stamps_zero(self):
        tr = Tracer(subsystems=("buddy",))
        tr.emit("buddy", "alloc")
        (event,) = list(tr.events())
        assert event["ts_ns"] == 0.0

    def test_emit_at_backdates(self):
        from repro.obs.clock import SimClock

        clock = SimClock()
        clock.advance(1000.0)
        tr = Tracer(subsystems=("span",), clock=clock)
        tr.emit_at(400.0, "span", "fault", phase="B")
        tr.emit("span", "fault", phase="E")
        begin, end = list(tr.events())
        assert begin["ts_ns"] == 400.0
        assert end["ts_ns"] == 1000.0
