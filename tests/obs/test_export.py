"""Exporter tests: the Chrome Trace Event Format contract (satellite).

Validity as Perfetto defines it: every ``B`` has a matching ``E``,
timestamps are monotonic non-decreasing per track (pid, tid), and counter
events carry numeric args.
"""

import json
from collections import defaultdict

from repro.obs.clock import SimClock
from repro.obs.export import (
    COUNTER_TID,
    SPAN_TID,
    chrome_trace,
    write_chrome_trace,
)
from repro.obs.spans import SpanRecorder
from repro.obs.timeline import TimelineSampler
from repro.obs.trace import Tracer


def _machine():
    clock = SimClock()
    tracer = Tracer(clock=clock)
    tracer.enable_all()
    spans = SpanRecorder(clock, tracer=tracer)
    spans.enabled = True
    return clock, tracer, spans


def assert_valid_trace(trace: dict) -> None:
    """The structural contract every exported trace must satisfy."""
    last_ts: dict = {}
    depth: dict = defaultdict(int)
    for event in trace["traceEvents"]:
        assert {"ph", "name", "pid", "tid"} <= set(event)
        if event["ph"] == "M":
            continue
        track = (event["pid"], event["tid"])
        assert event["ts"] >= last_ts.get(track, float("-inf")), (
            f"timestamps regress on track {track}"
        )
        last_ts[track] = event["ts"]
        if event["ph"] == "B":
            depth[track] += 1
        elif event["ph"] == "E":
            depth[track] -= 1
            assert depth[track] >= 0, "E without a prior B"
        elif event["ph"] == "C":
            for value in event["args"].values():
                assert isinstance(value, (int, float))
    assert not any(depth.values()), f"unbalanced B/E: {dict(depth)}"


class TestSpanEvents:
    def test_nested_spans_export_balanced(self):
        clock, tracer, spans = _machine()
        with spans.span("daemon_tick"):
            clock.advance(10.0)
            with spans.span("compaction", order=9):
                clock.advance(30.0)
        trace = chrome_trace(tracer=tracer, clock=clock)
        assert_valid_trace(trace)
        names = [
            e["name"] for e in trace["traceEvents"] if e["ph"] in ("B", "E")
        ]
        assert names == ["daemon_tick", "compaction", "compaction", "daemon_tick"]

    def test_orphan_end_is_dropped(self):
        clock, tracer, spans = _machine()
        # an E whose B fell off the ring: emit it directly
        tracer.emit_at(5.0, "span", "fault", phase="E")
        trace = chrome_trace(tracer=tracer, clock=clock)
        assert_valid_trace(trace)
        assert not any(e["ph"] == "E" for e in trace["traceEvents"])

    def test_trailing_open_spans_closed_at_now(self):
        clock, tracer, spans = _machine()
        span = spans.span("fault")
        span.__enter__()  # never exited: export mid-run
        clock.advance(100.0)
        trace = chrome_trace(tracer=tracer, clock=clock)
        assert_valid_trace(trace)
        ends = [e for e in trace["traceEvents"] if e["ph"] == "E"]
        assert len(ends) == 1
        assert ends[0]["ts"] == 100.0 / 1000.0  # closed at now, in us

    def test_args_exclude_envelope_keys(self):
        clock, tracer, spans = _machine()
        with spans.span("fault") as sp:
            clock.advance(1.0)
            sp.set(order=18)
        trace = chrome_trace(tracer=tracer, clock=clock)
        end = [e for e in trace["traceEvents"] if e["ph"] == "E"][0]
        assert end["args"]["order"] == 18
        assert "phase" not in end["args"]
        assert "seq" not in end["args"]


class TestCounterEvents:
    def test_multiple_series_stay_monotonic_on_the_counter_track(self):
        clock = SimClock()
        sampler = TimelineSampler(clock, interval_ms=1.0)
        sampler.add_series("zeta", lambda: 1.0)
        sampler.add_series("alpha", lambda: 2.0)
        for _ in range(4):
            clock.advance(2e6)
        trace = chrome_trace(timeline=sampler)
        assert_valid_trace(trace)
        counters = [e for e in trace["traceEvents"] if e["ph"] == "C"]
        assert len(counters) == 8
        assert all(e["tid"] == COUNTER_TID for e in counters)

    def test_counter_values_numeric(self):
        clock = SimClock()
        sampler = TimelineSampler(clock, interval_ms=1.0)
        sampler.add_series("pool", lambda: 3)
        clock.advance(2e6)
        trace = chrome_trace(timeline=sampler)
        (counter,) = [e for e in trace["traceEvents"] if e["ph"] == "C"]
        assert counter["args"] == {"value": 3.0}


class TestInstantEvents:
    def test_other_subsystems_get_their_own_tracks(self):
        clock, tracer, spans = _machine()
        clock.advance(10.0)
        tracer.emit("buddy", "split", order=5)
        tracer.emit("tlb", "walk", cycles=40)
        trace = chrome_trace(tracer=tracer, clock=clock)
        assert_valid_trace(trace)
        instants = [e for e in trace["traceEvents"] if e["ph"] == "i"]
        assert {e["name"] for e in instants} == {"buddy:split", "tlb:walk"}
        assert len({e["tid"] for e in instants}) == 2
        assert all(e["tid"] != SPAN_TID for e in instants)

    def test_instants_can_be_suppressed(self):
        clock, tracer, spans = _machine()
        tracer.emit("buddy", "split", order=5)
        trace = chrome_trace(tracer=tracer, clock=clock, include_instants=False)
        assert not any(e["ph"] == "i" for e in trace["traceEvents"])


class TestWriteChromeTrace:
    def test_file_is_loadable_json(self, tmp_path):
        clock, tracer, spans = _machine()
        with spans.span("fault"):
            clock.advance(5.0)
        path = tmp_path / "trace.json"
        count = write_chrome_trace(str(path), tracer=tracer, clock=clock)
        with open(path) as f:
            loaded = json.load(f)
        assert len(loaded["traceEvents"]) == count
        assert loaded["displayTimeUnit"] == "ms"
        assert_valid_trace(loaded)
