"""Unit tests for the metrics registry (counters, gauges, histograms)."""

import json

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Histogram,
    MetricsRegistry,
    render_key,
)


class TestRenderKey:
    def test_no_labels_is_bare_name(self):
        assert render_key("buddy_alloc_total", {}) == "buddy_alloc_total"

    def test_labels_sorted(self):
        key = render_key("m", {"b": 2, "a": 1})
        assert key == "m{a=1,b=2}"


class TestCounter:
    def test_inc_default_and_amount(self):
        reg = MetricsRegistry()
        c = reg.counter("events_total")
        c.inc()
        c.inc(4)
        assert reg.value("events_total") == 5

    def test_labelled_counters_are_distinct(self):
        reg = MetricsRegistry()
        reg.counter("allocs", order=0).inc()
        reg.counter("allocs", order=1).inc(2)
        assert reg.value("allocs", order=0) == 1
        assert reg.value("allocs", order=1) == 2

    def test_get_or_create_returns_same_object(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("x")


class TestGauge:
    def test_set_inc_dec(self):
        reg = MetricsRegistry()
        g = reg.gauge("pool_size")
        g.set(5)
        g.inc()
        g.dec(3)
        assert reg.value("pool_size") == 3

    def test_unregistered_value_is_zero(self):
        assert MetricsRegistry().value("never_seen") == 0


class TestHistogram:
    def test_bucketing_and_overflow(self):
        h = Histogram("lat", {}, bounds=(10, 100))
        for v in (3, 10, 50, 5000):
            h.observe(v)
        export = h.export()
        assert export["count"] == 4
        assert export["buckets"] == {"10": 2, "100": 1, "+Inf": 1}
        assert export["max"] == 5000
        assert h.mean == pytest.approx((3 + 10 + 50 + 5000) / 4)

    def test_export_omits_max_when_empty(self):
        assert "max" not in Histogram("h", {}, bounds=(10,)).export()

    def test_default_buckets_are_sorted_powers_of_four(self):
        assert DEFAULT_BUCKETS[0] == 1
        assert all(
            b == 4 * a for a, b in zip(DEFAULT_BUCKETS, DEFAULT_BUCKETS[1:])
        )

    def test_empty_bounds_rejected(self):
        with pytest.raises(ValueError):
            Histogram("h", {}, bounds=())

    def test_value_raises_on_histogram(self):
        reg = MetricsRegistry()
        reg.histogram("h")
        with pytest.raises(TypeError):
            reg.value("h")


class TestRegistrySnapshot:
    def test_snapshot_sections(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(7)
        reg.gauge("g").set(2)
        reg.histogram("h", buckets=(1, 2)).observe(1.5)
        snap = reg.snapshot()
        assert snap["counters"] == {"c": 7}
        assert snap["gauges"] == {"g": 2}
        assert snap["histograms"]["h"]["count"] == 1

    def test_collectors_run_on_snapshot(self):
        reg = MetricsRegistry()
        state = {"value": 10}
        reg.add_collector(lambda m: m.gauge("mirrored").set(state["value"]))
        assert reg.snapshot()["gauges"]["mirrored"] == 10
        state["value"] = 20
        assert reg.snapshot()["gauges"]["mirrored"] == 20

    def test_write_json_roundtrip(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("c", order=3).inc(9)
        path = str(tmp_path / "m.json")
        assert reg.write_json(path, extra={"run": {"policy": "Trident"}}) == path
        data = json.loads(open(path).read())
        assert data["counters"]["c{order=3}"] == 9
        assert data["run"]["policy"] == "Trident"

    def test_names_sorted(self):
        reg = MetricsRegistry()
        reg.counter("z")
        reg.counter("a")
        assert reg.names() == ["a", "z"]


class TestNearestRank:
    def test_ceil_based_indexing(self):
        from repro.obs.metrics import nearest_rank

        # 10 samples: p50 is the 5th (index 4), p99 the 10th (index 9)
        assert nearest_rank(10, 50.0) == 4
        assert nearest_rank(10, 90.0) == 8
        assert nearest_rank(10, 99.0) == 9
        assert nearest_rank(10, 0.0) == 0
        assert nearest_rank(10, 100.0) == 9
        assert nearest_rank(1, 50.0) == 0

    def test_out_of_range_pct_rejected(self):
        from repro.obs.metrics import nearest_rank

        with pytest.raises(ValueError):
            nearest_rank(10, -1.0)
        with pytest.raises(ValueError):
            nearest_rank(10, 101.0)


class TestPercentileFromBuckets:
    def test_returns_bucket_upper_bound(self):
        h = Histogram("h", {}, bounds=(10, 100, 1000))
        for v in (5, 5, 50, 50, 50, 500):  # 6 samples
            h.observe(v)
        assert h.percentile(50.0) == 100.0  # rank 3 lands in (10, 100]
        assert h.percentile(90.0) == 1000.0
        assert h.percentile(0.0) == 10.0

    def test_overflow_bucket_clamps_to_observed_max(self):
        """Regression: a nearest-rank sample in the open-ended overflow
        bucket used to report ``inf``; it must clamp to the largest
        observed sample so p99/p100 stay finite in service reports."""
        h = Histogram("h", {}, bounds=(10,))
        h.observe(99)
        assert h.percentile(50.0) == 99.0
        assert h.percentile(100.0) == 99.0

    def test_observed_max_never_inflates_lower_buckets(self):
        h = Histogram("h", {}, bounds=(10, 100))
        for v in (5, 5, 5, 250):
            h.observe(v)
        assert h.percentile(50.0) == 10.0  # finite bound untouched by max
        assert h.percentile(99.0) == 250.0  # overflow clamped to max

    def test_overflow_without_max_falls_back_to_inf(self):
        """Exports written before ``max`` was recorded keep the old
        (infinite) overflow behaviour rather than guessing a bound."""
        import math

        from repro.obs.metrics import percentile_from_buckets

        legacy = {"count": 1, "sum": 99.0, "buckets": {"10": 0, "+Inf": 1}}
        assert percentile_from_buckets(legacy, 50.0) == math.inf

    def test_empty_histogram_is_zero(self):
        h = Histogram("h", {}, bounds=(10,))
        assert h.percentile(99.0) == 0.0

    def test_survives_json_sort_keys_roundtrip(self):
        """Regression: sort_keys=True reorders bucket keys
        lexicographically ("+Inf" first); percentiles must sort
        numerically, not trust dict order."""
        import json

        from repro.obs.metrics import percentile_from_buckets

        h = Histogram("h", {}, bounds=(100, 1000, 30, 300))
        for v in (20, 200, 200, 2000):
            h.observe(v)
        direct = [h.percentile(p) for p in (50.0, 90.0, 99.0)]
        roundtripped = json.loads(json.dumps(h.export(), sort_keys=True))
        via_json = [
            percentile_from_buckets(roundtripped, p) for p in (50.0, 90.0, 99.0)
        ]
        assert via_json == direct
        # and the tails never decrease
        assert via_json == sorted(via_json)


class TestKeyEscaping:
    """render_key / parse_key / escape round-trips for awkward label values."""

    def test_escape_and_unescape_are_inverse(self):
        from repro.obs.metrics import escape_label_value, unescape_label_value

        for value in ('a"b', "back\\slash", "multi\nline", 'all\\"of\nit', ""):
            escaped = escape_label_value(value)
            assert "\n" not in escaped
            assert unescape_label_value(escaped) == value

    def test_simple_values_keep_bare_form(self):
        # The historical key spelling must not change for plain values.
        assert (
            render_key("m", {"workload": "GUPS", "policy": "Trident-1Gonly"})
            == "m{policy=Trident-1Gonly,workload=GUPS}"
        )

    def test_awkward_values_round_trip(self):
        from repro.obs.metrics import parse_key

        labels = {
            "quote": 'a"b',
            "slash": "c\\d",
            "newline": "e\nf",
            "comma": "g,h",
            "equals": "i=j",
            "brace": "k}l",
            "empty": "",
        }
        key = render_key("odd_total", labels)
        assert "\n" not in key  # keys stay single-line everywhere
        name, parsed = parse_key(key)
        assert name == "odd_total"
        assert parsed == labels

    def test_registry_snapshot_with_awkward_labels(self):
        reg = MetricsRegistry()
        reg.counter("odd_total", path='x"y\nz').inc(3)
        snapshot = reg.snapshot()
        (key,) = snapshot["counters"]
        from repro.obs.metrics import parse_key

        assert parse_key(key) == ("odd_total", {"path": 'x"y\nz'})
        assert snapshot["counters"][key] == 3

    def test_malformed_keys_raise(self):
        from repro.obs.metrics import parse_key

        with pytest.raises(ValueError, match="unclosed"):
            parse_key("m{a=1")
        with pytest.raises(ValueError, match="malformed label pair"):
            parse_key("m{nopair}")
        with pytest.raises(ValueError, match="unterminated label quote"):
            parse_key('m{a="broken}')
