"""Unit tests for the metrics registry (counters, gauges, histograms)."""

import json

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Histogram,
    MetricsRegistry,
    render_key,
)


class TestRenderKey:
    def test_no_labels_is_bare_name(self):
        assert render_key("buddy_alloc_total", {}) == "buddy_alloc_total"

    def test_labels_sorted(self):
        key = render_key("m", {"b": 2, "a": 1})
        assert key == "m{a=1,b=2}"


class TestCounter:
    def test_inc_default_and_amount(self):
        reg = MetricsRegistry()
        c = reg.counter("events_total")
        c.inc()
        c.inc(4)
        assert reg.value("events_total") == 5

    def test_labelled_counters_are_distinct(self):
        reg = MetricsRegistry()
        reg.counter("allocs", order=0).inc()
        reg.counter("allocs", order=1).inc(2)
        assert reg.value("allocs", order=0) == 1
        assert reg.value("allocs", order=1) == 2

    def test_get_or_create_returns_same_object(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("x")


class TestGauge:
    def test_set_inc_dec(self):
        reg = MetricsRegistry()
        g = reg.gauge("pool_size")
        g.set(5)
        g.inc()
        g.dec(3)
        assert reg.value("pool_size") == 3

    def test_unregistered_value_is_zero(self):
        assert MetricsRegistry().value("never_seen") == 0


class TestHistogram:
    def test_bucketing_and_overflow(self):
        h = Histogram("lat", {}, bounds=(10, 100))
        for v in (3, 10, 50, 5000):
            h.observe(v)
        export = h.export()
        assert export["count"] == 4
        assert export["buckets"] == {"10": 2, "100": 1, "+Inf": 1}
        assert h.mean == pytest.approx((3 + 10 + 50 + 5000) / 4)

    def test_default_buckets_are_sorted_powers_of_four(self):
        assert DEFAULT_BUCKETS[0] == 1
        assert all(
            b == 4 * a for a, b in zip(DEFAULT_BUCKETS, DEFAULT_BUCKETS[1:])
        )

    def test_empty_bounds_rejected(self):
        with pytest.raises(ValueError):
            Histogram("h", {}, bounds=())

    def test_value_raises_on_histogram(self):
        reg = MetricsRegistry()
        reg.histogram("h")
        with pytest.raises(TypeError):
            reg.value("h")


class TestRegistrySnapshot:
    def test_snapshot_sections(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(7)
        reg.gauge("g").set(2)
        reg.histogram("h", buckets=(1, 2)).observe(1.5)
        snap = reg.snapshot()
        assert snap["counters"] == {"c": 7}
        assert snap["gauges"] == {"g": 2}
        assert snap["histograms"]["h"]["count"] == 1

    def test_collectors_run_on_snapshot(self):
        reg = MetricsRegistry()
        state = {"value": 10}
        reg.add_collector(lambda m: m.gauge("mirrored").set(state["value"]))
        assert reg.snapshot()["gauges"]["mirrored"] == 10
        state["value"] = 20
        assert reg.snapshot()["gauges"]["mirrored"] == 20

    def test_write_json_roundtrip(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("c", order=3).inc(9)
        path = str(tmp_path / "m.json")
        assert reg.write_json(path, extra={"run": {"policy": "Trident"}}) == path
        data = json.loads(open(path).read())
        assert data["counters"]["c{order=3}"] == 9
        assert data["run"]["policy"] == "Trident"

    def test_names_sorted(self):
        reg = MetricsRegistry()
        reg.counter("z")
        reg.counter("a")
        assert reg.names() == ["a", "z"]
