"""CFG reachability and name-taint fixpoint mechanics."""

import ast

from repro.lint.dataflow import CFG, taint_names


def _func(source):
    tree = ast.parse(source)
    return next(
        n
        for n in ast.walk(tree)
        if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
    )


def _stmt(func, needle):
    """First simple statement whose AST dump mentions ``needle``."""
    for node in ast.walk(func):
        if (
            isinstance(node, (ast.Assign, ast.Expr, ast.Return))
            and needle in ast.dump(node)
        ):
            return node
    raise AssertionError(f"no statement matching {needle!r}")


_COMPOUND = (ast.If, ast.For, ast.While, ast.Try, ast.With, ast.Match)


def _charge_stmts(cfg):
    return {
        s
        for s in cfg.statements()
        if "charge" in ast.dump(s) and not isinstance(s, _COMPOUND)
    }


class TestEveryPathHits:
    def test_straight_line_hits(self):
        func = _func("def f():\n    x = 1\n    charge()\n    return x\n")
        cfg = CFG(func)
        assert cfg.every_path_hits(cfg.entry, _charge_stmts(cfg))

    def test_branch_missing_one_side(self):
        func = _func(
            "def f(c):\n"
            "    if c:\n"
            "        charge()\n"
            "    return 1\n"
        )
        cfg = CFG(func)
        assert not cfg.every_path_hits(cfg.entry, _charge_stmts(cfg))

    def test_branch_covered_both_sides(self):
        func = _func(
            "def f(c):\n"
            "    if c:\n"
            "        charge()\n"
            "    else:\n"
            "        charge()\n"
            "    return 1\n"
        )
        cfg = CFG(func)
        assert cfg.every_path_hits(cfg.entry, _charge_stmts(cfg))

    def test_loop_body_does_not_cover_zero_iteration_path(self):
        func = _func(
            "def f(xs):\n"
            "    for x in xs:\n"
            "        charge()\n"
            "    return 1\n"
        )
        cfg = CFG(func)
        assert not cfg.every_path_hits(cfg.entry, _charge_stmts(cfg))

    def test_raise_paths_are_ignored_by_default(self):
        func = _func(
            "def f(c):\n"
            "    if not c:\n"
            "        raise ValueError('bad')\n"
            "    charge()\n"
            "    return 1\n"
        )
        cfg = CFG(func)
        assert cfg.every_path_hits(cfg.entry, _charge_stmts(cfg))
        assert not cfg.every_path_hits(
            cfg.entry, _charge_stmts(cfg), ignore_raises=False
        )

    def test_early_return_escapes(self):
        func = _func(
            "def f(c):\n"
            "    if c:\n"
            "        return 0\n"
            "    charge()\n"
            "    return 1\n"
        )
        cfg = CFG(func)
        assert not cfg.every_path_hits(cfg.entry, _charge_stmts(cfg))

    def test_try_handler_path_counts(self):
        func = _func(
            "def f():\n"
            "    try:\n"
            "        risky()\n"
            "        charge()\n"
            "    except ValueError:\n"
            "        return 0\n"
            "    return 1\n"
        )
        cfg = CFG(func)
        # risky() may jump straight to the handler, skipping charge()
        assert not cfg.every_path_hits(cfg.entry, _charge_stmts(cfg))


class TestReaches:
    def test_reaches_forward(self):
        func = _func("def f():\n    a = 1\n    b = 2\n    return b\n")
        cfg = CFG(func)
        a, b = _stmt(func, "'a'"), _stmt(func, "'b'")
        assert cfg.reaches(a, b)
        assert not cfg.reaches(b, a)

    def test_forbid_blocks_the_only_path(self):
        func = _func(
            "def f():\n    a = 1\n    mid = 2\n    b = 3\n    return b\n"
        )
        cfg = CFG(func)
        a, mid, b = (
            _stmt(func, "'a'"),
            _stmt(func, "'mid'"),
            _stmt(func, "'b'"),
        )
        assert cfg.reaches(a, b)
        assert not cfg.reaches(a, b, forbid={mid})

    def test_loop_back_edge(self):
        func = _func(
            "def f(xs):\n"
            "    for x in xs:\n"
            "        a = 1\n"
            "        b = 2\n"
            "    return 0\n"
        )
        cfg = CFG(func)
        a, b = _stmt(func, "'a'"), _stmt(func, "'b'")
        # around the loop, b reaches a again
        assert cfg.reaches(b, a)


def _seed_call(name):
    def seed(expr):
        return (
            isinstance(expr, ast.Call)
            and isinstance(expr.func, ast.Name)
            and expr.func.id == name
        )

    return seed


class TestTaint:
    def test_assignment_chain(self):
        func = _func(
            "def f():\n"
            "    a = source()\n"
            "    b = a + 1\n"
            "    c = clean()\n"
        )
        state = taint_names(func, _seed_call("source"))
        assert state.names == {"a", "b"}

    def test_tuple_unpack(self):
        func = _func("def f():\n    a, b = source()\n    c = b\n")
        state = taint_names(func, _seed_call("source"))
        assert state.names == {"a", "b", "c"}

    def test_for_loop_variable(self):
        func = _func(
            "def f():\n"
            "    xs = source()\n"
            "    for x in xs:\n"
            "        y = x\n"
        )
        state = taint_names(func, _seed_call("source"))
        assert {"xs", "x", "y"} <= state.names

    def test_subscript_store_taints_base(self):
        func = _func(
            "def f():\n"
            "    d = {}\n"
            "    d['k'] = source()\n"
            "    out = d\n"
        )
        state = taint_names(func, _seed_call("source"))
        assert {"d", "out"} <= state.names

    def test_container_mutator_taints_receiver(self):
        func = _func(
            "def f():\n"
            "    acc = []\n"
            "    acc.append(source())\n"
            "    out = acc\n"
        )
        state = taint_names(func, _seed_call("source"))
        assert {"acc", "out"} <= state.names

    def test_sanitizer_stops_descent(self):
        func = _func(
            "def f():\n"
            "    s = source()\n"
            "    ordered = wrap(s)\n"
            "    raw = s\n"
        )

        def sanitizer(expr):
            return (
                isinstance(expr, ast.Call)
                and isinstance(expr.func, ast.Name)
                and expr.func.id == "wrap"
            )

        state = taint_names(func, _seed_call("source"), sanitizer)
        assert "s" in state.names
        assert "raw" in state.names
        assert "ordered" not in state.names

    def test_initial_names_propagate(self):
        func = _func("def f(p):\n    q = p\n")
        state = taint_names(
            func, lambda e: False, initial={"p"}
        )
        assert state.names == {"p", "q"}

    def test_expr_tainted_oracle(self):
        func = _func("def f():\n    a = source()\n")
        state = taint_names(func, _seed_call("source"))
        assert state.expr_tainted(ast.parse("a + 1", mode="eval").body)
        assert not state.expr_tainted(ast.parse("b", mode="eval").body)

    def test_fixpoint_converges_on_backward_dependency(self):
        # b is assigned from a *before* a is tainted in source order;
        # the fixpoint must still catch it.
        func = _func(
            "def f():\n"
            "    b = a\n"
            "    a = source()\n"
        )
        state = taint_names(func, _seed_call("source"))
        assert state.names == {"a", "b"}
