"""TRD006-TRD008 fixtures: injected violations fire at the right line,
clean idioms stay silent, and every finding is line-suppressible."""

from repro.lint import (
    ClockDiscipline,
    DeterminismHazard,
    ScalarFallback,
    run_lint,
)

CLOCK = [ClockDiscipline()]
DETERMINISM = [DeterminismHazard()]
SCALAR = [ScalarFallback()]


def _write(tmp_path, relpath, source):
    path = tmp_path / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source)
    return str(path)


class TestTRD006SkippedCharge:
    BAD = (
        "def access(clock, hit):\n"
        "    cost_ns = 5 if hit else 50\n"
        "    if hit:\n"
        "        clock.advance(cost_ns)\n"
        "    return 1\n"
    )

    def test_leaf_that_skips_the_charge_on_one_path(self, tmp_path):
        path = _write(tmp_path, "repro/sim/mod.py", self.BAD)
        (f,) = run_lint([str(tmp_path)], CLOCK)
        assert f.rule == "TRD006"
        assert f.path == path
        assert f.line == 2  # the first binding of the cost
        assert "skips the charge" in f.message

    def test_unconditional_charge_is_clean(self, tmp_path):
        _write(
            tmp_path,
            "repro/sim/mod.py",
            "def access(clock, hit):\n"
            "    cost_ns = 5 if hit else 50\n"
            "    clock.advance(cost_ns)\n"
            "    return 1\n",
        )
        assert run_lint([str(tmp_path)], CLOCK) == []

    def test_cost_guard_is_a_sanctioned_skip(self, tmp_path):
        # `if cost_ns:` — the untaken branch charges zero, which is fine
        _write(
            tmp_path,
            "repro/sim/mod.py",
            "def access(clock, hit):\n"
            "    cost_ns = 5 if hit else 0\n"
            "    if cost_ns:\n"
            "        clock.advance(cost_ns)\n"
            "    return 1\n",
        )
        assert run_lint([str(tmp_path)], CLOCK) == []

    def test_clock_guard_is_a_sanctioned_skip(self, tmp_path):
        _write(
            tmp_path,
            "repro/sim/mod.py",
            "def access(clock, hit):\n"
            "    cost_ns = 5 if hit else 50\n"
            "    if clock is not None:\n"
            "        clock.advance(cost_ns)\n"
            "    return 1\n",
        )
        assert run_lint([str(tmp_path)], CLOCK) == []

    def test_returned_cost_is_the_callers_contract(self, tmp_path):
        _write(
            tmp_path,
            "repro/sim/mod.py",
            "def access(clock, hit):\n"
            "    cost_ns = 5 if hit else 50\n"
            "    if hit:\n"
            "        clock.advance(cost_ns)\n"
            "    return cost_ns\n",
        )
        assert run_lint([str(tmp_path)], CLOCK) == []

    def test_out_of_scope_module_not_checked(self, tmp_path):
        _write(tmp_path, "repro/experiments/mod.py", self.BAD)
        assert run_lint([str(tmp_path)], CLOCK) == []

    def test_suppressible_on_the_finding_line(self, tmp_path):
        _write(
            tmp_path,
            "repro/sim/mod.py",
            "def access(clock, hit):\n"
            "    cost_ns = 5 if hit else 50  # trd: ignore[TRD006]\n"
            "    if hit:\n"
            "        clock.advance(cost_ns)\n"
            "    return 1\n",
        )
        assert run_lint([str(tmp_path)], CLOCK) == []


class TestTRD006DoubleCharge:
    def test_charging_twice_on_one_path(self, tmp_path):
        _write(
            tmp_path,
            "repro/tlb/mod.py",
            "def access(clock):\n"
            "    cost_ns = 5\n"
            "    clock.advance(cost_ns)\n"
            "    clock.advance(cost_ns)\n"
            "    return 1\n",
        )
        (f,) = run_lint([str(tmp_path)], CLOCK)
        assert f.rule == "TRD006"
        assert f.line == 4
        assert "twice" in f.message

    def test_recomputed_cost_may_charge_again(self, tmp_path):
        _write(
            tmp_path,
            "repro/tlb/mod.py",
            "def access(clock):\n"
            "    cost_ns = 5\n"
            "    clock.advance(cost_ns)\n"
            "    cost_ns = 7\n"
            "    clock.advance(cost_ns)\n"
            "    return 1\n",
        )
        assert run_lint([str(tmp_path)], CLOCK) == []

    def test_exclusive_branches_may_both_charge(self, tmp_path):
        _write(
            tmp_path,
            "repro/tlb/mod.py",
            "def access(clock, hit):\n"
            "    cost_ns = 5\n"
            "    if hit:\n"
            "        clock.advance(cost_ns)\n"
            "    else:\n"
            "        clock.advance(cost_ns)\n"
            "    return 1\n",
        )
        assert run_lint([str(tmp_path)], CLOCK) == []


class TestTRD006CalleeRecharge:
    BAD = (
        "def leaf(clock):\n"
        "    step_ns = 5\n"
        "    clock.advance(step_ns)\n"
        "    return step_ns\n"
        "\n"
        "def agg(clock):\n"
        "    total_ns = leaf(clock)\n"
        "    clock.advance(total_ns)\n"
        "    return 1\n"
    )

    def test_recharging_a_callee_charged_total(self, tmp_path):
        _write(tmp_path, "repro/mem/mod.py", self.BAD)
        (f,) = run_lint([str(tmp_path)], CLOCK)
        assert f.rule == "TRD006"
        assert f.line == 8
        assert "residual" in f.message

    def test_residual_shaped_recharge_is_the_idiom(self, tmp_path):
        _write(
            tmp_path,
            "repro/mem/mod.py",
            "def leaf(clock):\n"
            "    step_ns = 5\n"
            "    clock.advance(step_ns)\n"
            "    return step_ns\n"
            "\n"
            "def agg(clock):\n"
            "    start = clock.now_ns\n"
            "    total_ns = leaf(clock)\n"
            "    residual_ns = total_ns - (clock.now_ns - start)\n"
            "    clock.advance(residual_ns)\n"
            "    return 1\n",
        )
        assert run_lint([str(tmp_path)], CLOCK) == []

    def test_non_advancing_callee_return_may_be_charged(self, tmp_path):
        _write(
            tmp_path,
            "repro/mem/mod.py",
            "def cost_of(size):\n"
            "    return size * 3\n"
            "\n"
            "def agg(clock, size):\n"
            "    cost_ns = cost_of(size)\n"
            "    clock.advance(cost_ns)\n"
            "    return 1\n",
        )
        assert run_lint([str(tmp_path)], CLOCK) == []


class TestTRD006NowNsWrites:
    def test_now_ns_write_outside_clock_module(self, tmp_path):
        _write(
            tmp_path,
            "repro/service/mod.py",
            "def warp(clock):\n    clock.now_ns = 100\n",
        )
        (f,) = run_lint([str(tmp_path)], CLOCK)
        assert f.rule == "TRD006"
        assert f.line == 2
        assert "now_ns" in f.message

    def test_clock_module_itself_may_write(self, tmp_path):
        _write(
            tmp_path,
            "repro/obs/clock.py",
            "class SimClock:\n"
            "    def advance(self, ns):\n"
            "        self.now_ns = self.now_ns + ns\n",
        )
        assert run_lint([str(tmp_path)], CLOCK) == []

    def test_suppressible(self, tmp_path):
        _write(
            tmp_path,
            "repro/service/mod.py",
            "def warp(clock):\n"
            "    clock.now_ns = 100  # trd: ignore[TRD006] test shim\n",
        )
        assert run_lint([str(tmp_path)], CLOCK) == []


class TestTRD007Unordered:
    BAD = (
        "def export(metrics, shards):\n"
        "    shard_set = set(shards)\n"
        "    for shard in shard_set:\n"
        "        metrics.observe(shard)\n"
    )

    def test_set_iteration_feeding_a_metrics_export(self, tmp_path):
        path = _write(tmp_path, "repro/obs/mod.py", self.BAD)
        (f,) = run_lint([str(tmp_path)], DETERMINISM)
        assert f.rule == "TRD007"
        assert f.path == path
        assert f.line == 3  # the for statement
        assert "unordered" in f.message

    def test_sorted_iteration_is_clean(self, tmp_path):
        _write(
            tmp_path,
            "repro/obs/mod.py",
            "def export(metrics, shards):\n"
            "    shard_set = set(shards)\n"
            "    for shard in sorted(shard_set):\n"
            "        metrics.observe(shard)\n",
        )
        assert run_lint([str(tmp_path)], DETERMINISM) == []

    def test_float_accumulation_over_listdir(self, tmp_path):
        _write(
            tmp_path,
            "repro/obs/mod.py",
            "import os\n"
            "def total(path, costs):\n"
            "    total_ns = 0.0\n"
            "    for name in os.listdir(path):\n"
            "        total_ns += costs[name]\n"
            "    return total_ns\n",
        )
        (f,) = run_lint([str(tmp_path)], DETERMINISM)
        assert f.rule == "TRD007"
        assert f.line == 4
        assert "accumulation" in f.message

    def test_sum_reduction_over_a_set(self, tmp_path):
        _write(
            tmp_path,
            "repro/obs/mod.py",
            "def total(xs):\n"
            "    pool = {float(x) for x in xs}\n"
            "    return sum(pool)\n",
        )
        (f,) = run_lint([str(tmp_path)], DETERMINISM)
        assert f.rule == "TRD007"
        assert f.line == 3

    def test_loop_without_sink_or_accumulator_is_clean(self, tmp_path):
        _write(
            tmp_path,
            "repro/obs/mod.py",
            "def scan(shards):\n"
            "    seen = set(shards)\n"
            "    for shard in seen:\n"
            "        shard.validate()\n",
        )
        assert run_lint([str(tmp_path)], DETERMINISM) == []

    def test_suppressible(self, tmp_path):
        _write(
            tmp_path,
            "repro/obs/mod.py",
            "def export(metrics, shards):\n"
            "    shard_set = set(shards)\n"
            "    for shard in shard_set:  # trd: ignore[TRD007] gauge\n"
            "        metrics.observe(shard)\n",
        )
        assert run_lint([str(tmp_path)], DETERMINISM) == []


class TestTRD007WallClock:
    def test_wall_clock_into_json_dump(self, tmp_path):
        _write(
            tmp_path,
            "repro/obs/mod.py",
            "import json\n"
            "import time\n"
            "def save(f):\n"
            "    wall_s = time.time()\n"
            '    json.dump({"wall_s": wall_s}, f)\n',
        )
        (f,) = run_lint([str(tmp_path)], DETERMINISM)
        assert f.rule == "TRD007"
        assert f.line == 5
        assert "wall-clock" in f.message

    def test_wall_clock_kept_out_of_the_payload_is_clean(self, tmp_path):
        _write(
            tmp_path,
            "repro/obs/mod.py",
            "import json\n"
            "import time\n"
            "def save(f, payload):\n"
            "    started = time.time()\n"
            "    json.dump(payload, f)\n"
            "    return time.time() - started\n",
        )
        assert run_lint([str(tmp_path)], DETERMINISM) == []

    def test_taint_flows_through_a_helper_return(self, tmp_path):
        _write(
            tmp_path,
            "repro/obs/mod.py",
            "import json\n"
            "import time\n"
            "def now_s():\n"
            "    return time.time()\n"
            "def save(f):\n"
            "    stamp = now_s()\n"
            "    json.dump(stamp, f)\n",
        )
        (f,) = run_lint([str(tmp_path)], DETERMINISM)
        assert f.rule == "TRD007"
        assert f.line == 7

    def test_interprocedural_sink_parameter(self, tmp_path):
        _write(
            tmp_path,
            "repro/obs/mod.py",
            "import json\n"
            "import time\n"
            "def write_manifest(payload, f):\n"
            "    json.dump(payload, f)\n"
            "def run(f):\n"
            "    wall_s = time.time()\n"
            '    write_manifest({"wall_s": wall_s}, f)\n',
        )
        (f,) = run_lint([str(tmp_path)], DETERMINISM)
        assert f.rule == "TRD007"
        assert f.line == 7
        assert "write_manifest" in f.message

    def test_suppressible(self, tmp_path):
        _write(
            tmp_path,
            "repro/obs/mod.py",
            "import json\n"
            "import time\n"
            "def save(f):\n"
            "    wall_s = time.time()\n"
            '    json.dump({"wall_s": wall_s}, f)'
            "  # trd: ignore[TRD007] bench report\n",
        )
        assert run_lint([str(tmp_path)], DETERMINISM) == []


class TestTRD007HashId:
    def test_hash_as_subscript_key(self, tmp_path):
        _write(
            tmp_path,
            "repro/obs/mod.py",
            "def index(d, obj):\n    d[hash(obj)] = obj\n",
        )
        (f,) = run_lint([str(tmp_path)], DETERMINISM)
        assert f.rule == "TRD007"
        assert f.line == 2
        assert "hash()" in f.message

    def test_id_as_sort_key(self, tmp_path):
        _write(
            tmp_path,
            "repro/obs/mod.py",
            "def order(xs):\n"
            "    return sorted(xs, key=lambda x: id(x))\n",
        )
        (f,) = run_lint([str(tmp_path)], DETERMINISM)
        assert f.rule == "TRD007"
        assert "id()" in f.message
        assert "sort key" in f.message

    def test_stable_keys_are_clean(self, tmp_path):
        _write(
            tmp_path,
            "repro/obs/mod.py",
            "def index(d, obj):\n    d[obj.name] = obj\n",
        )
        assert run_lint([str(tmp_path)], DETERMINISM) == []


class TestTRD008ScalarFallback:
    BAD = (
        "import numpy as np\n"
        "\n"
        "def charge(costs):\n"
        "    total = 0.0\n"
        "    for c in costs.tolist():\n"
        "        total += c\n"
        "    return total\n"
    )

    def test_scalar_loop_in_sim_batch(self, tmp_path):
        path = _write(tmp_path, "repro/sim/batch.py", self.BAD)
        (f,) = run_lint([str(tmp_path)], SCALAR)
        assert f.rule == "TRD008"
        assert f.path == path
        assert f.line == 5  # the for statement
        assert "per-element" in f.message

    def test_ndarray_annotated_param_is_tracked(self, tmp_path):
        _write(
            tmp_path,
            "repro/tlb/batch.py",
            "import numpy as np\n"
            "\n"
            "def charge(costs: np.ndarray) -> float:\n"
            "    total = 0.0\n"
            "    for c in costs:\n"
            "        total += c\n"
            "    return total\n",
        )
        (f,) = run_lint([str(tmp_path)], SCALAR)
        assert f.rule == "TRD008"
        assert f.line == 5

    def test_transparent_wrappers_keep_taint(self, tmp_path):
        _write(
            tmp_path,
            "repro/service/fleet.py",
            "import numpy as np\n"
            "\n"
            "def charge(n):\n"
            "    sizes = np.arange(n)\n"
            "    for i, s in enumerate(sizes):\n"
            "        print(i, s)\n",
        )
        (f,) = run_lint([str(tmp_path)], SCALAR)
        assert f.rule == "TRD008"
        assert f.line == 5

    def test_non_hot_module_is_not_checked(self, tmp_path):
        _write(tmp_path, "repro/sim/other.py", self.BAD)
        assert run_lint([str(tmp_path)], SCALAR) == []

    def test_batch_granular_loop_is_clean(self, tmp_path):
        # a call the rule cannot prove array-valued is a taint barrier:
        # iterating *batches* of work is the hot path's correct shape
        _write(
            tmp_path,
            "repro/sim/batch.py",
            "import numpy as np\n"
            "\n"
            "def run(wl, api):\n"
            "    batches = wl.iter_batches(api)\n"
            "    for batch in batches:\n"
            "        batch.execute()\n",
        )
        assert run_lint([str(tmp_path)], SCALAR) == []

    def test_vectorized_reduction_is_clean(self, tmp_path):
        _write(
            tmp_path,
            "repro/sim/batch.py",
            "import numpy as np\n"
            "\n"
            "def charge(costs):\n"
            "    return float(np.asarray(costs).sum())\n",
        )
        assert run_lint([str(tmp_path)], SCALAR) == []

    def test_marker_above_def_opts_the_function_out(self, tmp_path):
        _write(
            tmp_path,
            "repro/sim/batch.py",
            "import numpy as np\n"
            "\n"
            "# trd: scalar-fallback[budget-gated replay tail]\n"
            "def charge(costs):\n"
            "    total = 0.0\n"
            "    for c in costs.tolist():\n"
            "        total += c\n"
            "    return total\n",
        )
        assert run_lint([str(tmp_path)], SCALAR) == []

    def test_marker_on_def_line_opts_the_function_out(self, tmp_path):
        _write(
            tmp_path,
            "repro/sim/batch.py",
            "import numpy as np\n"
            "\n"
            "def charge(costs):  # trd: scalar-fallback[gated tail]\n"
            "    for c in costs.tolist():\n"
            "        pass\n",
        )
        assert run_lint([str(tmp_path)], SCALAR) == []

    def test_suppressible_on_the_loop_line(self, tmp_path):
        _write(
            tmp_path,
            "repro/sim/batch.py",
            "import numpy as np\n"
            "\n"
            "def charge(costs):\n"
            "    for c in costs.tolist():  # trd: ignore[TRD008] bounded\n"
            "        pass\n",
        )
        assert run_lint([str(tmp_path)], SCALAR) == []
