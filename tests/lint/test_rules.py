"""Per-rule fixtures: each TRD rule accepts a good snippet, flags a bad one."""

from repro.lint import ALL_RULES, run_lint


def _write(tmp_path, relpath, source):
    path = tmp_path / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source)
    return str(path)


def _rules(tmp_path, relpath, source):
    _write(tmp_path, relpath, source)
    return [f.rule for f in run_lint([str(tmp_path)], ALL_RULES)]


GOOD_EXPERIMENT = '''\
CSV_NAME = "demo"
TITLE = "Demo experiment"
QUICK_KWARGS = {"n_accesses": 100}


def run(n_accesses: int = 1000, seed: int = 7) -> list:
    return []


def main(quick: bool = False, seed: int = 7) -> None:
    run(**(QUICK_KWARGS if quick else {}), seed=seed)
'''


class TestTRD001NoGlobalRng:
    def test_flags_stdlib_random_import(self, tmp_path):
        assert _rules(tmp_path, "repro/sim/m.py", "import random\n") == [
            "TRD001"
        ]

    def test_flags_from_random_import(self, tmp_path):
        assert _rules(
            tmp_path, "repro/sim/m.py", "from random import shuffle\n"
        ) == ["TRD001"]

    def test_flags_np_random_seed(self, tmp_path):
        src = "import numpy as np\nnp.random.seed(0)\n"
        assert _rules(tmp_path, "repro/sim/m.py", src) == ["TRD001"]

    def test_flags_unseeded_default_rng(self, tmp_path):
        src = "import numpy as np\nrng = np.random.default_rng()\n"
        assert _rules(tmp_path, "repro/sim/m.py", src) == ["TRD001"]

    def test_accepts_seeded_default_rng(self, tmp_path):
        src = (
            "import numpy as np\n"
            "rng = np.random.default_rng(7)\n"
            "rng2 = np.random.default_rng(seed=7)\n"
        )
        assert _rules(tmp_path, "repro/sim/m.py", src) == []


class TestTRD002ExperimentProtocol:
    def test_accepts_conforming_module(self, tmp_path):
        assert _rules(tmp_path, "repro/experiments/demo.py", GOOD_EXPERIMENT) == []

    def test_flags_missing_title(self, tmp_path):
        src = GOOD_EXPERIMENT.replace('TITLE = "Demo experiment"\n', "")
        findings = _rules(tmp_path, "repro/experiments/demo.py", src)
        assert findings == ["TRD002"]

    def test_flags_missing_main(self, tmp_path):
        src = GOOD_EXPERIMENT[: GOOD_EXPERIMENT.index("def main")]
        assert _rules(tmp_path, "repro/experiments/demo.py", src) == ["TRD002"]

    def test_flags_main_without_seed_param(self, tmp_path):
        src = GOOD_EXPERIMENT.replace(
            "def main(quick: bool = False, seed: int = 7)",
            "def main(quick: bool = False)",
        ).replace("run(**(QUICK_KWARGS if quick else {}), seed=seed)", "pass")
        assert _rules(tmp_path, "repro/experiments/demo.py", src) == ["TRD002"]

    def test_flags_quick_kwargs_key_not_in_run(self, tmp_path):
        src = GOOD_EXPERIMENT.replace(
            'QUICK_KWARGS = {"n_accesses": 100}',
            'QUICK_KWARGS = {"n_acesses": 100}',  # typo: not a run() param
        ).replace("run(**(QUICK_KWARGS if quick else {}), seed=seed)", "pass")
        assert _rules(tmp_path, "repro/experiments/demo.py", src) == ["TRD002"]

    def test_run_with_var_kwargs_accepts_any_key(self, tmp_path):
        src = GOOD_EXPERIMENT.replace(
            "def run(n_accesses: int = 1000, seed: int = 7) -> list:",
            "def run(seed: int = 7, **kwargs) -> list:",
        )
        assert _rules(tmp_path, "repro/experiments/demo.py", src) == []

    def test_infra_modules_exempt(self, tmp_path):
        assert _rules(tmp_path, "repro/experiments/runner.py", "X = 1\n") == []

    def test_outside_experiments_exempt(self, tmp_path):
        assert _rules(tmp_path, "repro/mem/demo.py", "X = 1\n") == []


class TestTRD003FrameArithmetic:
    def test_flags_true_division_of_frames(self, tmp_path):
        assert _rules(
            tmp_path, "repro/mem/m.py", "half = free_frames / 2\n"
        ) == ["TRD003"]

    def test_accepts_floor_division(self, tmp_path):
        assert _rules(
            tmp_path, "repro/mem/m.py", "half = free_frames // 2\n"
        ) == []

    def test_flags_float_of_frame_count(self, tmp_path):
        assert _rules(tmp_path, "repro/mem/m.py", "x = float(n_frames)\n") == [
            "TRD003"
        ]

    def test_flags_magic_order_keyword(self, tmp_path):
        assert _rules(
            tmp_path, "repro/mem/m.py", "b = Buddy(total, max_order=18)\n"
        ) == ["TRD003"]

    def test_flags_magic_by_size_lookup(self, tmp_path):
        src = "gb = mapped_bytes_by_size.get(2, 0)\nx = walks_by_size[1]\n"
        assert _rules(tmp_path, "repro/mem/m.py", src) == ["TRD003", "TRD003"]

    def test_flags_magic_shift_and_compare(self, tmp_path):
        src = "big = 1 << 18\nok = order == 9\n"
        assert _rules(tmp_path, "repro/mem/m.py", src) == ["TRD003", "TRD003"]

    def test_flags_scale_factor_on_bytes(self, tmp_path):
        assert _rules(
            tmp_path, "repro/mem/m.py", "paper_gb = heap_bytes * 256\n"
        ) == ["TRD003"]

    def test_container_literals_exempt(self, tmp_path):
        src = "AXES = (1, 8, 64, 512)\nSIZES = [9, 18]\n"
        assert _rules(tmp_path, "repro/mem/m.py", src) == []

    def test_out_of_scope_package_exempt(self, tmp_path):
        assert _rules(
            tmp_path, "repro/tlb/m.py", "half = free_frames / 2\n"
        ) == []

    def test_flags_deprecated_pagesize_alias_anywhere(self, tmp_path):
        src = "mapped = by_size[PageSize.MID]\n"
        assert _rules(tmp_path, "repro/tlb/m.py", src) == ["TRD003"]

    def test_flags_dotted_pagesize_alias(self, tmp_path):
        src = "import repro.config as config\nx = config.PageSize.LARGE\n"
        assert _rules(tmp_path, "repro/core/m.py", src) == ["TRD003"]

    def test_pagesize_shim_home_exempt(self, tmp_path):
        src = "x = PageSize.ALL\n"
        assert _rules(tmp_path, "repro/config.py", src) == []

    def test_non_pagesize_attribute_not_flagged(self, tmp_path):
        src = "names = geometry.NAMES if hasattr(geometry, 'NAMES') else ()\n"
        assert _rules(tmp_path, "repro/tlb/m.py", src) == []

    def test_flags_magic_order_shift_outside_mem_scope(self, tmp_path):
        assert _rules(tmp_path, "repro/vm/m.py", "big = 1 << 18\n") == [
            "TRD003"
        ]

    def test_magic_shift_reports_once_inside_mem_scope(self, tmp_path):
        assert _rules(tmp_path, "repro/mem/m.py", "big = 1 << 9\n") == [
            "TRD003"
        ]


CATALOG = '''\
METRIC_CATALOG = (
    ("demo_hits_total", "counter", "", "demo"),
)
'''


class TestTRD004MetricRegistry:
    def test_accepts_cataloged_emission(self, tmp_path):
        _write(tmp_path, "repro/obs/__init__.py", CATALOG)
        _write(
            tmp_path,
            "repro/mem/m.py",
            'c = metrics.counter("demo_hits_total")\n',
        )
        assert [f.rule for f in run_lint([str(tmp_path)], ALL_RULES)] == []

    def test_flags_uncataloged_emission(self, tmp_path):
        _write(tmp_path, "repro/obs/__init__.py", CATALOG)
        _write(
            tmp_path,
            "repro/mem/m.py",
            'c = metrics.counter("not_in_catalog_total")\n',
        )
        findings = run_lint([str(tmp_path)], ALL_RULES)
        assert [f.rule for f in findings] == ["TRD004"]
        assert "not_in_catalog_total" in findings[0].message

    def test_flags_near_duplicate_names(self, tmp_path):
        _write(tmp_path, "repro/obs/__init__.py", CATALOG)
        _write(
            tmp_path,
            "repro/mem/m.py",
            'c = metrics.counter("demo_hits")\n',  # catalog has demo_hits_total
        )
        findings = run_lint([str(tmp_path)], ALL_RULES)
        # demo_hits is both uncataloged and a near-duplicate of demo_hits_total
        assert [f.rule for f in findings] == ["TRD004", "TRD004"]
        assert any("near-duplicate" in f.message for f in findings)

    def test_registry_internals_exempt(self, tmp_path):
        _write(tmp_path, "repro/obs/__init__.py", CATALOG)
        _write(
            tmp_path,
            "repro/obs/metrics.py",
            'c = self.counter("anything_goes")\n',
        )
        assert [f.rule for f in run_lint([str(tmp_path)], ALL_RULES)] == []


SPAN_CATALOG = '''\
METRIC_CATALOG = (
    ("span_duration_ns", "histogram", "kind", "span durations by span kind"),
    ("timeline_samples_total", "counter", "", "timeline sampling instants"),
)
'''


class TestTRD004SpanMetrics:
    """The span recorder's metrics are ordinary emissions: the catalog
    must cover them, and the rule must see through the labelled-histogram
    emit pattern the recorder uses."""

    def test_cataloged_span_histogram_accepted(self, tmp_path):
        _write(tmp_path, "repro/obs/__init__.py", SPAN_CATALOG)
        _write(
            tmp_path,
            "repro/obs/spans.py",
            'hist = self.metrics.histogram(\n'
            '    "span_duration_ns", buckets=BUCKETS, kind=kind\n'
            ')\n',
        )
        assert [f.rule for f in run_lint([str(tmp_path)], ALL_RULES)] == []

    def test_uncataloged_span_metric_flagged(self, tmp_path):
        _write(tmp_path, "repro/obs/__init__.py", SPAN_CATALOG)
        _write(
            tmp_path,
            "repro/obs/spans.py",
            'h = self.metrics.histogram("span_seconds", kind=kind)\n',
        )
        findings = run_lint([str(tmp_path)], ALL_RULES)
        assert "TRD004" in [f.rule for f in findings]
        assert any("span_seconds" in f.message for f in findings)

    def test_sampler_counter_accepted(self, tmp_path):
        _write(tmp_path, "repro/obs/__init__.py", SPAN_CATALOG)
        _write(
            tmp_path,
            "repro/obs/timeline.py",
            'c = metrics.counter("timeline_samples_total")\n',
        )
        assert [f.rule for f in run_lint([str(tmp_path)], ALL_RULES)] == []


TELEMETRY_CATALOG = '''\
METRIC_CATALOG = (
    ("telemetry_frames_total", "counter", "", "scrape frames emitted"),
    ("alert_transitions_total", "counter", "rule", "alert state changes"),
    ("alerts_active", "gauge", "", "currently-firing alert instances"),
)
'''


class TestTRD004TelemetryMetrics:
    """The telemetry pipeline's own metrics (scraper frame counter, alert
    engine transition counter and active gauge) are ordinary emissions:
    the catalog must cover them, labeled and bare forms alike."""

    def test_cataloged_frame_counter_accepted(self, tmp_path):
        _write(tmp_path, "repro/obs/__init__.py", TELEMETRY_CATALOG)
        _write(
            tmp_path,
            "repro/obs/telemetry/exposition.py",
            'c = registry.counter("telemetry_frames_total")\n',
        )
        assert [f.rule for f in run_lint([str(tmp_path)], ALL_RULES)] == []

    def test_cataloged_labeled_transition_counter_accepted(self, tmp_path):
        _write(tmp_path, "repro/obs/__init__.py", TELEMETRY_CATALOG)
        _write(
            tmp_path,
            "repro/obs/telemetry/alerts.py",
            'self.metrics.counter(\n'
            '    "alert_transitions_total", rule=rule.name\n'
            ').inc()\n',
        )
        assert [f.rule for f in run_lint([str(tmp_path)], ALL_RULES)] == []

    def test_cataloged_active_gauge_accepted(self, tmp_path):
        _write(tmp_path, "repro/obs/__init__.py", TELEMETRY_CATALOG)
        _write(
            tmp_path,
            "repro/obs/telemetry/alerts.py",
            'g = metrics.gauge("alerts_active")\n',
        )
        assert [f.rule for f in run_lint([str(tmp_path)], ALL_RULES)] == []

    def test_uncataloged_telemetry_metric_flagged(self, tmp_path):
        _write(tmp_path, "repro/obs/__init__.py", TELEMETRY_CATALOG)
        _write(
            tmp_path,
            "repro/obs/telemetry/alerts.py",
            'c = metrics.counter("alert_pages_total")\n',
        )
        findings = run_lint([str(tmp_path)], ALL_RULES)
        assert "TRD004" in [f.rule for f in findings]
        assert any("alert_pages_total" in f.message for f in findings)


class TestTRD005TouchResultContract:
    """touch() results are typed (TouchResult); raw-float use is flagged."""

    def test_accepts_typed_field_reads(self, tmp_path):
        src = (
            "res = system.touch(process, va)\n"
            "total += res.cycles\n"
            "if res.faulted:\n"
            "    sizes.append(res.page_size)\n"
        )
        assert _rules(tmp_path, "repro/sim/m.py", src) == []

    def test_flags_arithmetic_on_result(self, tmp_path):
        src = "total = system.touch(process, va) + 1.0\n"
        assert _rules(tmp_path, "repro/sim/m.py", src) == ["TRD005"]

    def test_flags_augmented_accumulation(self, tmp_path):
        src = "total += system.touch(process, va)\n"
        assert _rules(tmp_path, "repro/sim/m.py", src) == ["TRD005"]

    def test_flags_float_coercion(self, tmp_path):
        src = "cycles = float(system.touch(process, va))\n"
        assert _rules(tmp_path, "repro/sim/m.py", src) == ["TRD005"]

    def test_flags_comparison(self, tmp_path):
        src = "slow = system.touch(process, va) > 100\n"
        assert _rules(tmp_path, "repro/sim/m.py", src) == ["TRD005"]

    def test_single_arg_touch_is_not_the_system_api(self, tmp_path):
        # WorkloadAPI.touch(addresses) returns None; one positional arg
        # means it is not the System.touch(process, va) surface.
        src = "api.touch(addresses)\n"
        assert _rules(tmp_path, "repro/sim/m.py", src) == []

    def test_runtime_shim_warns_once_per_site(self):
        """The runtime side of the same contract: raw-float use the rule
        flags statically also emits exactly one DeprecationWarning per
        call site, however many times that site executes."""
        import warnings

        from repro.sim.batch import TouchResult

        TouchResult.reset_warned_sites()
        try:
            res = TouchResult(3.0)
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                for _ in range(50):
                    _ = float(res)  # the fixture TRD005 flags, at runtime
            assert len(caught) == 1
            assert issubclass(caught[0].category, DeprecationWarning)
        finally:
            TouchResult.reset_warned_sites()
