"""The invariant audit layer accepts every legal state, rejects corruption."""

import numpy as np
import pytest

from repro.lint.invariants import (
    InvariantViolation,
    check_buddy,
    check_regions,
)
from repro.mem.buddy import BuddyAllocator
from repro.mem.frames import FrameState

TOTAL = 1 << 10
MAX_ORDER = 6


def _random_state(seed: int) -> BuddyAllocator:
    """Drive a buddy through a seeded random alloc/free sequence."""
    rng = np.random.default_rng(seed)
    buddy = BuddyAllocator(TOTAL, MAX_ORDER)
    live: list[int] = []
    for _ in range(int(rng.integers(10, 60))):
        if live and rng.random() < 0.4:
            buddy.free(live.pop(int(rng.integers(len(live)))))
        else:
            pfn = buddy.try_alloc(
                int(rng.integers(MAX_ORDER + 1)),
                movable=bool(rng.random() < 0.7),
            )
            if pfn is not None:
                live.append(pfn)
    return buddy


class TestAcceptsLegalStates:
    def test_fresh_buddy_passes(self):
        assert check_buddy(BuddyAllocator(TOTAL, MAX_ORDER)) > 0

    @pytest.mark.parametrize("seed", range(200))
    def test_random_alloc_free_sequences_pass(self, seed):
        buddy = _random_state(seed)
        assert check_buddy(buddy) > 0


class TestRejectsCorruption:
    def test_corrupted_free_frame_gauge(self):
        buddy = _random_state(0)
        buddy._free_frames += 1
        with pytest.raises(InvariantViolation, match="gauge"):
            check_buddy(buddy)

    def test_unmerged_buddy_halves(self):
        buddy = BuddyAllocator(TOTAL, MAX_ORDER)
        # Split a max-order block into its two halves by hand: both free at
        # order k-1 is exactly the state eager coalescing must never leave.
        k = MAX_ORDER
        start = buddy.free_block_starts(k)[0]
        buddy._free_lists[k].discard(start)
        buddy._free_lists[k - 1].add(start)
        buddy._free_lists[k - 1].add(start + (1 << (k - 1)))
        with pytest.raises(InvariantViolation, match="not coalesced"):
            check_buddy(buddy)

    def test_free_list_entry_overlapping_allocation(self):
        buddy = _random_state(1)
        pfn = buddy.alloc(2, movable=True)
        buddy._free_lists[2].add(pfn)  # same block both allocated and free
        with pytest.raises(InvariantViolation):
            check_buddy(buddy)

    def test_frame_state_drift(self):
        buddy = _random_state(2)
        pfn = buddy.alloc(0, movable=True)
        buddy.frame_state[pfn] = FrameState.UNMOVABLE
        with pytest.raises(InvariantViolation, match="movable"):
            check_buddy(buddy)


class TestRegions:
    def _tracked(self):
        from repro.config import SCALED_GEOMETRY
        from repro.mem.regions import RegionTracker

        geometry = SCALED_GEOMETRY
        total = 4 * geometry.frames_per_large
        tracker = RegionTracker(total, geometry)
        buddy = BuddyAllocator(
            total, geometry.large_order, listeners=(tracker,)
        )
        for _ in range(5):
            buddy.alloc(3, movable=False)
        return tracker, buddy

    def test_consistent_counters_pass(self):
        tracker, buddy = self._tracked()
        assert check_regions(tracker, buddy.frame_state) == 2 * tracker.n_regions

    def test_corrupted_free_counter_rejected(self):
        tracker, buddy = self._tracked()
        tracker.free_frames[0] += 1
        with pytest.raises(InvariantViolation, match="free counter"):
            check_regions(tracker, buddy.frame_state)

    def test_corrupted_unmovable_counter_rejected(self):
        tracker, buddy = self._tracked()
        tracker.unmovable_frames[-1] -= 1
        with pytest.raises(InvariantViolation, match="unmovable counter"):
            check_regions(tracker, buddy.frame_state)
