"""Baseline multiset semantics and the SARIF export shape."""

import json

import pytest

from repro.lint import (
    ALL_RULES,
    apply_baseline,
    load_baseline,
    render_baseline,
    to_sarif,
    write_baseline,
)
from repro.lint.engine import Finding


def _finding(rule="TRD001", path="/x/repro/mod.py", line=1, message="m"):
    return Finding(rule=rule, path=path, line=line, message=message)


class TestBaseline:
    def test_round_trip(self, tmp_path):
        findings = [_finding(), _finding(message="other")]
        target = str(tmp_path / "baseline.json")
        write_baseline(findings, target)
        entries = load_baseline(target)
        result = apply_baseline(findings, entries)
        assert result.new == []
        assert result.matched == findings
        assert result.stale == []

    def test_line_numbers_do_not_invalidate(self, tmp_path):
        target = str(tmp_path / "baseline.json")
        write_baseline([_finding(line=10)], target)
        result = apply_baseline([_finding(line=99)], load_baseline(target))
        assert result.new == []
        assert len(result.matched) == 1

    def test_multiset_needs_one_entry_per_duplicate(self, tmp_path):
        target = str(tmp_path / "baseline.json")
        write_baseline([_finding()], target)
        result = apply_baseline(
            [_finding(), _finding()], load_baseline(target)
        )
        assert len(result.matched) == 1
        assert len(result.new) == 1

    def test_stale_entries_are_reported(self, tmp_path):
        target = str(tmp_path / "baseline.json")
        write_baseline([_finding(message="paid-off")], target)
        result = apply_baseline([], load_baseline(target))
        assert result.stale == [("TRD001", "repro/mod.py", "paid-off")]

    def test_keys_use_package_relative_paths(self):
        text = render_baseline([_finding(path="/ci/box/repro/mod.py")])
        entry = json.loads(text)["entries"][0]
        assert entry["path"] == "repro/mod.py"

    def test_render_is_canonical(self):
        a = render_baseline([_finding(message="b"), _finding(message="a")])
        b = render_baseline([_finding(message="a"), _finding(message="b")])
        assert a == b
        assert a.endswith("\n")
        payload = json.loads(a)
        assert payload["version"] == 1

    def test_load_rejects_wrong_shape(self, tmp_path):
        bad = tmp_path / "baseline.json"
        bad.write_text("[]\n")
        with pytest.raises(ValueError, match="not a lint baseline"):
            load_baseline(str(bad))

    def test_load_rejects_malformed_entry(self, tmp_path):
        bad = tmp_path / "baseline.json"
        bad.write_text('{"version": 1, "entries": [{"rule": "TRD001"}]}\n')
        with pytest.raises(ValueError, match="malformed baseline entry"):
            load_baseline(str(bad))


class TestSarif:
    def test_log_shape(self):
        log = to_sarif([_finding(line=7)], ALL_RULES)
        assert log["version"] == "2.1.0"
        (run,) = log["runs"]
        driver = run["tool"]["driver"]
        assert driver["name"] == "repro-lint"
        codes = [rule["id"] for rule in driver["rules"]]
        assert "TRD001" in codes and "TRD008" in codes
        (result,) = run["results"]
        assert result["ruleId"] == "TRD001"
        assert result["level"] == "error"
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == "repro/mod.py"
        assert location["region"]["startLine"] == 7

    def test_rules_carry_rationale_as_full_description(self):
        log = to_sarif([], ALL_RULES)
        driver = log["runs"][0]["tool"]["driver"]
        by_code = {rule["id"]: rule for rule in driver["rules"]}
        assert "fullDescription" in by_code["TRD006"]
        assert "latency" in by_code["TRD006"]["fullDescription"]["text"]

    def test_empty_findings_still_valid(self):
        log = to_sarif([], ALL_RULES)
        assert log["runs"][0]["results"] == []
        assert json.dumps(log)  # serializable
