"""Call-graph construction: symbol resolution, aliasing, degradation."""

import ast

from repro.lint.callgraph import CallGraph, get_callgraph, module_dotted_name
from repro.lint.engine import LintContext, iter_python_files, load_modules


def _write(tmp_path, relpath, source):
    path = tmp_path / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source)
    return str(path)


def _graph(tmp_path, files):
    for relpath, source in files.items():
        _write(tmp_path, relpath, source)
    modules, errors = load_modules(iter_python_files([str(tmp_path)]))
    assert errors == []
    return CallGraph.build(LintContext(modules))


def _edges(graph, key):
    """Set of uniquely-resolved callee keys out of ``key``."""
    return {
        site.callees[0] for site in graph.calls_in(key) if site.unique
    }


class TestModuleNames:
    def test_dotted_name_drops_init(self, tmp_path):
        _write(tmp_path, "repro/pkg/__init__.py", "")
        _write(tmp_path, "repro/pkg/mod.py", "")
        modules, _ = load_modules(iter_python_files([str(tmp_path)]))
        names = sorted(module_dotted_name(m) for m in modules)
        assert names == ["repro.pkg", "repro.pkg.mod"]


class TestResolution:
    def test_same_module_call(self, tmp_path):
        graph = _graph(
            tmp_path,
            {"repro/a.py": "def f():\n    g()\n\ndef g():\n    pass\n"},
        )
        assert _edges(graph, ("repro.a", "f")) == {("repro.a", "g")}

    def test_from_import(self, tmp_path):
        graph = _graph(
            tmp_path,
            {
                "repro/util.py": "def helper():\n    pass\n",
                "repro/a.py": (
                    "from repro.util import helper\n"
                    "def f():\n    helper()\n"
                ),
            },
        )
        assert _edges(graph, ("repro.a", "f")) == {("repro.util", "helper")}

    def test_from_import_with_alias(self, tmp_path):
        graph = _graph(
            tmp_path,
            {
                "repro/util.py": "def helper():\n    pass\n",
                "repro/a.py": (
                    "from repro.util import helper as h\n"
                    "def f():\n    h()\n"
                ),
            },
        )
        assert _edges(graph, ("repro.a", "f")) == {("repro.util", "helper")}

    def test_module_import_with_alias(self, tmp_path):
        graph = _graph(
            tmp_path,
            {
                "repro/util.py": "def helper():\n    pass\n",
                "repro/a.py": (
                    "import repro.util as u\n"
                    "def f():\n    u.helper()\n"
                ),
            },
        )
        assert _edges(graph, ("repro.a", "f")) == {("repro.util", "helper")}

    def test_relative_import(self, tmp_path):
        graph = _graph(
            tmp_path,
            {
                "repro/pkg/__init__.py": "",
                "repro/pkg/util.py": "def helper():\n    pass\n",
                "repro/pkg/a.py": (
                    "from .util import helper\n"
                    "def f():\n    helper()\n"
                ),
            },
        )
        assert _edges(graph, ("repro.pkg.a", "f")) == {
            ("repro.pkg.util", "helper")
        }

    def test_reexport_through_package_init(self, tmp_path):
        graph = _graph(
            tmp_path,
            {
                "repro/pkg/__init__.py": (
                    "from repro.pkg.util import helper\n"
                ),
                "repro/pkg/util.py": "def helper():\n    pass\n",
                "repro/a.py": (
                    "from repro.pkg import helper\n"
                    "def f():\n    helper()\n"
                ),
            },
        )
        assert _edges(graph, ("repro.a", "f")) == {
            ("repro.pkg.util", "helper")
        }

    def test_cycle_between_modules(self, tmp_path):
        graph = _graph(
            tmp_path,
            {
                "repro/a.py": (
                    "from repro.b import g\n"
                    "def f():\n    g()\n"
                ),
                "repro/b.py": (
                    "from repro.a import f\n"
                    "def g():\n    f()\n"
                ),
            },
        )
        assert _edges(graph, ("repro.a", "f")) == {("repro.b", "g")}
        assert _edges(graph, ("repro.b", "g")) == {("repro.a", "f")}
        # transitive closure over the cycle terminates and includes both
        closed = graph.transitive_closure({("repro.a", "f")})
        assert closed == {("repro.a", "f"), ("repro.b", "g")}

    def test_decorated_and_nested_functions(self, tmp_path):
        graph = _graph(
            tmp_path,
            {
                "repro/a.py": (
                    "import functools\n"
                    "def leaf():\n    pass\n"
                    "@functools.cache\n"
                    "def outer():\n"
                    "    def inner():\n"
                    "        leaf()\n"
                    "    inner()\n"
                ),
            },
        )
        assert ("repro.a", "outer") in graph.functions
        assert ("repro.a", "outer.inner") in graph.functions
        assert _edges(graph, ("repro.a", "outer.inner")) == {
            ("repro.a", "leaf")
        }

    def test_self_method_resolution(self, tmp_path):
        graph = _graph(
            tmp_path,
            {
                "repro/a.py": (
                    "class Base:\n"
                    "    def step(self):\n        pass\n"
                    "class Sub(Base):\n"
                    "    def run(self):\n        self.step()\n"
                ),
            },
        )
        assert _edges(graph, ("repro.a", "Sub.run")) == {
            ("repro.a", "Base.step")
        }

    def test_imported_base_class_resolution(self, tmp_path):
        graph = _graph(
            tmp_path,
            {
                "repro/base.py": (
                    "class Base:\n"
                    "    def step(self):\n        pass\n"
                ),
                "repro/a.py": (
                    "from repro.base import Base\n"
                    "class Sub(Base):\n"
                    "    def run(self):\n        self.step()\n"
                ),
            },
        )
        assert _edges(graph, ("repro.a", "Sub.run")) == {
            ("repro.base", "Base.step")
        }


class TestGracefulDegradation:
    def test_dynamic_call_resolves_to_nothing(self, tmp_path):
        graph = _graph(
            tmp_path,
            {
                "repro/a.py": (
                    "def f(cb):\n"
                    "    cb()\n"
                    "    getattr(f, 'x')()\n"
                    "    (lambda: None)()\n"
                ),
            },
        )
        sites = graph.calls_in(("repro.a", "f"))
        assert sites, "call sites are still recorded"
        assert all(not site.unique for site in sites)
        # the cb()/lambda sites resolve to nothing at all
        assert any(site.callees == () for site in sites)

    def test_ambiguous_method_call_is_not_unique(self, tmp_path):
        graph = _graph(
            tmp_path,
            {
                "repro/a.py": (
                    "class A:\n"
                    "    def step(self):\n        pass\n"
                    "class B:\n"
                    "    def step(self):\n        pass\n"
                    "def run(obj):\n"
                    "    obj.step()\n"
                ),
            },
        )
        (site,) = graph.calls_in(("repro.a", "run"))
        assert not site.unique
        assert set(site.callees) == {
            ("repro.a", "A.step"),
            ("repro.a", "B.step"),
        }

    def test_external_calls_resolve_to_nothing(self, tmp_path):
        graph = _graph(
            tmp_path,
            {
                "repro/a.py": (
                    "import json\n"
                    "def f(x):\n    return json.dumps(x)\n"
                ),
            },
        )
        (site,) = graph.calls_in(("repro.a", "f"))
        assert site.callees == ()


class TestQueries:
    def test_function_at_finds_innermost_enclosing(self, tmp_path):
        _write(
            tmp_path,
            "repro/a.py",
            "def f():\n    g()\n\ndef g():\n    pass\n",
        )
        modules, _ = load_modules(iter_python_files([str(tmp_path)]))
        ctx = LintContext(modules)
        graph = get_callgraph(ctx)
        (module,) = modules
        call = next(
            n for n in ast.walk(module.tree) if isinstance(n, ast.Call)
        )
        info = graph.function_at(module, call)
        assert info is not None and info.key == ("repro.a", "f")

    def test_get_callgraph_caches_on_context(self, tmp_path):
        _write(tmp_path, "repro/a.py", "def f():\n    pass\n")
        modules, _ = load_modules(iter_python_files([str(tmp_path)]))
        ctx = LintContext(modules)
        assert get_callgraph(ctx) is get_callgraph(ctx)

    def test_transitive_closure_skips_ambiguous_edges(self, tmp_path):
        graph = _graph(
            tmp_path,
            {
                "repro/a.py": (
                    "class A:\n"
                    "    def step(self):\n        pass\n"
                    "class B:\n"
                    "    def step(self):\n        pass\n"
                    "def run(obj):\n"
                    "    obj.step()\n"
                ),
            },
        )
        closed = graph.transitive_closure({("repro.a", "A.step")})
        assert ("repro.a", "run") not in closed
        loose = graph.transitive_closure(
            {("repro.a", "A.step")}, unique_only=False
        )
        assert ("repro.a", "run") in loose

    def test_propagate_property_flows_up_unique_edges(self, tmp_path):
        graph = _graph(
            tmp_path,
            {
                "repro/a.py": (
                    "def source():\n    return 1\n"
                    "def mid():\n    return source()\n"
                    "def top():\n    return mid()\n"
                ),
            },
        )
        keys = graph.propagate_property(
            has_property=lambda info: info.name == "source",
            via_call=lambda info, site: True,
        )
        assert keys == {
            ("repro.a", "source"),
            ("repro.a", "mid"),
            ("repro.a", "top"),
        }
