"""--audit plumbing: runners, pv exchange hook, sweep failure surfacing."""

import json
import os

import pytest

from repro.experiments.runner import (
    NativeRunner,
    RunConfig,
    VirtRunConfig,
    VirtRunner,
)
from repro.lint.invariants import InvariantViolation


class TestNativeRunnerAudit:
    def test_audit_runs_and_counts(self, tmp_path):
        out = str(tmp_path / "m.json")
        runner = NativeRunner(
            RunConfig(
                "GUPS",
                "Trident",
                n_accesses=1500,
                seed=7,
                audit=True,
                audit_every=256,
                metrics_out=out,
            )
        )
        runner.run()
        auditor = runner.system.auditor
        assert auditor is not None
        assert auditor.audits >= 1  # the runner's final audit at minimum
        assert auditor.checks > 0
        assert auditor.violations == 0
        section = json.load(open(out))["run"]
        assert section["audit_runs"] == auditor.audits
        assert section["audit_checks"] == auditor.checks
        assert section["audit_violations"] == 0

    def test_audit_off_by_default(self):
        runner = NativeRunner(
            RunConfig("GUPS", "Trident", n_accesses=500, seed=7)
        )
        assert runner.system.auditor is None

    def test_selftest_injection_surfaces(self, monkeypatch):
        monkeypatch.setenv("REPRO_AUDIT_SELFTEST", "1")
        runner = NativeRunner(
            RunConfig("GUPS", "Trident", n_accesses=500, seed=7, audit=True)
        )
        with pytest.raises(InvariantViolation, match="self-test"):
            runner.run()
        assert runner.system.auditor.violations >= 1


class TestVirtRunnerAudit:
    def test_pv_run_audits_both_systems(self):
        runner = VirtRunner(
            VirtRunConfig(
                "GUPS",
                "Trident",
                "Trident",
                pv=True,
                n_accesses=1500,
                seed=7,
                audit=True,
                audit_every=512,
            )
        )
        runner.run()
        guest, host = runner.vm.guest.auditor, runner.vm.host.auditor
        assert guest is not None and host is not None
        assert guest.audits >= 1 and host.audits >= 1
        assert guest.violations == 0 and host.violations == 0
        # the host auditor carries the hypervisor for pv bijectivity
        assert host.hypervisor is runner.vm.hypervisor

    def test_corrupted_exchange_detected(self):
        """A pfn swap that skips the owner fix-up must fail the pv audit."""
        from repro.lint.invariants import check_pv_mappings

        runner = VirtRunner(
            VirtRunConfig(
                "GUPS",
                "Trident",
                "Trident",
                pv=True,
                n_accesses=800,
                seed=7,
                audit=True,
            )
        )
        runner.run()
        hypervisor = runner.vm.hypervisor
        assert check_pv_mappings(hypervisor) > 0
        mappings = list(hypervisor.host_table.iter_mappings())
        a, b = mappings[0], mappings[-1]
        a.pfn, b.pfn = b.pfn, a.pfn  # exchange without _owner_swap
        with pytest.raises(InvariantViolation):
            check_pv_mappings(hypervisor)


class TestSweepAudit:
    def _sweep(self, tmp_path, monkeypatch, selftest: bool):
        from repro.experiments.orchestrator import SweepConfig, run_sweep

        if selftest:
            monkeypatch.setenv("REPRO_AUDIT_SELFTEST", "1")
        else:
            monkeypatch.delenv("REPRO_AUDIT_SELFTEST", raising=False)
        config = SweepConfig(
            modules=("table3",),
            quick=True,
            jobs=1,
            out_dir=str(tmp_path / "report"),
            max_retries=0,
            audit=True,
        )
        return run_sweep(config, progress=lambda *_: None)

    def test_audit_counters_reach_sweep_metrics(self, tmp_path, monkeypatch):
        manifest = self._sweep(tmp_path, monkeypatch, selftest=False)
        assert all(u["status"] == "ok" for u in manifest["units"])
        assert manifest["audit"] is True
        summary = json.load(open(manifest["metrics_summary"]))
        assert summary["totals"]["audit_runs"] >= 1
        assert summary["totals"]["audit_checks"] > 0
        assert summary["totals"]["audit_violations"] == 0

    def test_audit_failures_surface_as_unit_failures(
        self, tmp_path, monkeypatch
    ):
        manifest = self._sweep(tmp_path, monkeypatch, selftest=True)
        statuses = {u["status"] for u in manifest["units"]}
        assert "ok" not in statuses
        manifest_path = os.path.join(
            str(tmp_path / "report"), "sweep_manifest.json"
        )
        on_disk = json.load(open(manifest_path))
        assert on_disk["counts"].get("ok", 0) == 0
