"""Engine mechanics: file discovery, suppressions, scoping, TRD000."""

import os
from pathlib import Path

import pytest

from repro.lint import ALL_RULES, SYNTAX_RULE, iter_python_files, run_lint
from repro.lint.engine import _package_path

SRC = str(Path(__file__).resolve().parents[2] / "src")


def _write(tmp_path, relpath, source):
    path = tmp_path / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source)
    return str(path)


class TestDiscovery:
    def test_iter_python_files_walks_sorted_and_dedups(self, tmp_path):
        a = _write(tmp_path, "repro/b.py", "")
        b = _write(tmp_path, "repro/a.py", "")
        _write(tmp_path, "repro/__pycache__/c.py", "")
        _write(tmp_path, "repro/.hidden/d.py", "")
        _write(tmp_path, "repro/notes.txt", "")
        files = iter_python_files([str(tmp_path), a])
        assert files == [b, a]  # sorted within the walk, explicit dup dropped

    def test_missing_path_raises(self):
        with pytest.raises(FileNotFoundError):
            iter_python_files(["/no/such/dir"])

    def test_package_path_anchors_at_last_repro_component(self):
        assert (
            _package_path("/x/repro/src/repro/mem/buddy.py")
            == "repro/mem/buddy.py"
        )
        assert _package_path("scratch.py").endswith("scratch.py")


class TestSuppressions:
    def test_line_scoped_code_suppression(self, tmp_path):
        _write(
            tmp_path,
            "repro/mod.py",
            "import random  # trd: ignore[TRD001]\n",
        )
        assert run_lint([str(tmp_path)], ALL_RULES) == []

    def test_bare_ignore_suppresses_everything(self, tmp_path):
        _write(tmp_path, "repro/mod.py", "import random  # trd: ignore\n")
        assert run_lint([str(tmp_path)], ALL_RULES) == []

    def test_wrong_code_does_not_suppress(self, tmp_path):
        _write(
            tmp_path,
            "repro/mod.py",
            "import random  # trd: ignore[TRD003]\n",
        )
        findings = run_lint([str(tmp_path)], ALL_RULES)
        assert [f.rule for f in findings] == ["TRD001"]


class TestSyntaxErrors:
    def test_unparsable_file_becomes_trd000(self, tmp_path):
        _write(tmp_path, "repro/broken.py", "def f(:\n")
        findings = run_lint([str(tmp_path)], ALL_RULES)
        assert len(findings) == 1
        assert findings[0].rule == SYNTAX_RULE


class TestCleanTree:
    def test_src_tree_lints_clean(self):
        """The acceptance gate: `repro lint src/` exits 0 on this tree."""
        findings = run_lint([SRC], ALL_RULES)
        assert findings == [], "\n".join(f.render() for f in findings)


class TestFindingShape:
    def test_render_and_to_dict(self, tmp_path):
        _write(tmp_path, "repro/mod.py", "import random\n")
        (finding,) = run_lint([str(tmp_path)], ALL_RULES)
        assert finding.render().startswith(finding.path + ":1: TRD001 ")
        assert finding.to_dict() == {
            "rule": "TRD001",
            "path": finding.path,
            "line": 1,
            "message": finding.message,
        }
        assert os.path.isabs(finding.path) or finding.path.startswith(
            str(tmp_path)
        )
