"""Satellite 4: ``run_all --quick`` must actually reach every module.

The historical bug: ``--quick`` was parsed but silently dropped, so every
"quick" CI run executed the full-size experiments.  These tests pin the
fix from both ends — the flag now flows into ``module.main``, and any
module whose entrypoint cannot accept it is rejected up front.
"""

import types

import pytest

from repro.experiments.run_all import (
    MODULES,
    QuickModeError,
    main,
    validate_quick_support,
)


class TestValidateQuickSupport:
    def test_every_registered_module_supports_quick(self):
        for name, module in MODULES:
            validate_quick_support(name, module)  # must not raise

    def test_every_registered_module_declares_quick_kwargs(self):
        for name, module in MODULES:
            assert isinstance(getattr(module, "QUICK_KWARGS", None), dict), (
                f"{name} must define QUICK_KWARGS (may be empty)"
            )

    def test_main_without_quick_kwarg_is_rejected(self):
        bad = types.ModuleType("bad")
        bad.QUICK_KWARGS = {}
        bad.main = lambda seed=7: None  # drops the quick flag: the old bug
        with pytest.raises(QuickModeError, match="bad"):
            validate_quick_support("bad", bad)

    def test_main_without_seed_kwarg_is_rejected(self):
        bad = types.ModuleType("bad")
        bad.QUICK_KWARGS = {}
        bad.main = lambda quick=False: None
        with pytest.raises(QuickModeError, match="seed"):
            validate_quick_support("bad", bad)

    def test_quick_kwargs_must_match_run_signature(self):
        bad = types.ModuleType("bad")
        bad.QUICK_KWARGS = {"n_accesses": 10}  # run() has no such knob
        bad.main = lambda quick=False, seed=7: None
        bad.run = lambda workloads=(): []
        with pytest.raises(QuickModeError, match="n_accesses"):
            validate_quick_support("bad", bad)


class TestRunAllCli:
    def test_quick_flag_reaches_the_module(self, monkeypatch, capsys):
        seen = {}

        def fake_main(quick=False, seed=7):
            seen.update(quick=quick, seed=seed)

        import repro.experiments.latency_micro as latency_micro

        monkeypatch.setattr(latency_micro, "main", fake_main)
        main(["latency_micro", "--quick", "--seed", "11"])
        assert seen == {"quick": True, "seed": 11}
        out = capsys.readouterr().out
        assert "=== latency_micro ===" in out

    def test_default_is_full_mode(self, monkeypatch):
        seen = {}

        def fake_main(quick=False, seed=7):
            seen.update(quick=quick, seed=seed)

        import repro.experiments.latency_micro as latency_micro

        monkeypatch.setattr(latency_micro, "main", fake_main)
        main(["latency_micro"])
        assert seen == {"quick": False, "seed": 7}

    def test_unknown_module_exits_with_error(self):
        with pytest.raises(SystemExit):
            main(["definitely_not_a_module"])

    def test_quick_validates_before_running_anything(self, monkeypatch):
        """A module that ignores --quick aborts the run before any work."""

        import repro.experiments.latency_micro as latency_micro

        calls = []
        monkeypatch.setattr(
            latency_micro,
            "main",
            lambda **kw: calls.append(kw),
        )
        # break figure3's quick contract
        import repro.experiments.figure3 as figure3

        monkeypatch.setattr(figure3, "main", lambda seed=7: None)
        with pytest.raises(QuickModeError, match="figure3"):
            main(["figure3", "latency_micro", "--quick"])
        assert calls == []  # nothing executed
