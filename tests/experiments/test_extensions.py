"""Tests for the extension experiments (5-level, full matrix, direct map)."""

from repro.experiments.extension_5level import run as run_5level
from repro.experiments.figure2_full import run as run_matrix
from repro.experiments.kernel_directmap import run as run_directmap


class TestKernelDirectMap:
    def test_1gb_direct_map_beats_2mb_modestly(self):
        rows = run_directmap(memory_regions=96, n_accesses=40_000)
        mid, large, summary = rows
        assert large["walk_cycles_per_access"] < mid["walk_cycles_per_access"]
        # The paper's 2-3% band, with slack for the reduced run.
        assert 0.5 < summary["kernel_cycles_per_access"] < 8.0

    def test_1gb_misses_can_be_more_frequent_but_cheaper(self):
        # 1GB entries are few (4+16); misses may be MORE frequent, yet each
        # walk is far cheaper - the trade the paper's Section 4 discusses.
        rows = run_directmap(memory_regions=96, n_accesses=40_000)
        mid, large, _ = rows
        assert large["walk_cycles_per_access"] < mid["walk_cycles_per_access"]


class TestFiveLevel:
    def test_trident_gain_widens_with_five_levels(self):
        rows = run_5level(workloads=("GUPS",), n_accesses=20_000)
        row = rows[0]
        assert row["5level:walk_cpa_thp"] > row["4level:walk_cpa_thp"]
        assert row["5level:trident_vs_thp"] >= row["4level:trident_vs_thp"] - 0.01


class TestNineCombinations:
    def test_diagonal_dominates_rows_and_columns(self):
        rows = run_matrix(workload="GUPS", n_accesses=15_000)
        perf = {
            (row["guest"], h): row[f"perf:host={h}"]
            for row in rows
            for h in ("4KB", "2MB", "1GB")
        }
        # min(guest, host) bounds the effective size: upgrading only one
        # side beyond the other never helps much.
        assert perf[("1GB", "1GB")] >= perf[("1GB", "2MB")] - 0.02
        assert perf[("1GB", "1GB")] >= perf[("2MB", "1GB")] - 0.02
        assert perf[("2MB", "2MB")] >= perf[("2MB", "4KB")] - 0.02
        # And the diagonal improves with size.
        assert perf[("1GB", "1GB")] > perf[("2MB", "2MB")] > perf[("4KB", "4KB")] - 0.02
