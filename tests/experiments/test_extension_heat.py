"""Heat-ordered Trident extension: reduced-size shape check."""

from repro.experiments.extension_heat import run


class TestHeatExtension:
    def test_heat_helps_when_daemon_cpu_scarce(self):
        rows = run(workloads=("Canneal",), n_accesses=20_000)
        row = rows[0]
        # Scarce regime: heat ordering never hurts and usually helps.
        assert row["scarce:heat_vs_trident"] > 0.97
        assert row["scarce:walk_cpa_heat"] <= row["scarce:walk_cpa_trident"] * 1.05
        # Ample regime: both converge; no meaningful difference.
        assert abs(row["ample:heat_vs_trident"] - 1.0) < 0.03
