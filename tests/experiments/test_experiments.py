"""Smoke and shape tests for the experiment harness (reduced sizes)."""

import os

import pytest

from repro.experiments.configs import POLICY_CONFIGS, policy_factory
from repro.experiments.report import format_table, geomean, write_csv
from repro.experiments.runner import (
    NativeRunner,
    RunConfig,
    VirtRunConfig,
    VirtRunner,
)

BASE, MID, LARGE = 0, 1, 2  # three-tier level indices (x86-shaped test geometry)


class TestConfigs:
    def test_all_paper_configs_present(self):
        for name in (
            "4KB",
            "2MB-THP",
            "2MB-Hugetlbfs",
            "1GB-Hugetlbfs",
            "HawkEye",
            "Trident",
            "Trident-1Gonly",
            "Trident-NC",
            "Trident-PFonly",
        ):
            assert name in POLICY_CONFIGS

    def test_unknown_config_rejected(self):
        with pytest.raises(KeyError):
            policy_factory("nope")


class TestReport:
    def test_format_table_aligns(self):
        rows = [{"a": 1, "bb": 2.5}, {"a": 10, "bb": 0.125}]
        text = format_table(rows, "T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert "2.500" in text

    def test_format_empty(self):
        assert "(no rows)" in format_table([], "T")

    def test_write_csv(self, tmp_path):
        path = write_csv([{"x": 1, "y": 2}], "t", directory=str(tmp_path))
        assert os.path.exists(path)
        content = open(path).read()
        assert "x,y" in content and "1,2" in content

    def test_geomean(self):
        assert geomean([2.0, 8.0]) == pytest.approx(4.0)
        assert geomean([]) == 0.0


class TestNativeRunner:
    def test_small_run_produces_metrics(self):
        m = NativeRunner(
            RunConfig("GUPS", "Trident", n_accesses=3000, machine_regions=48)
        ).run()
        assert m.accesses == 3000
        assert m.walk_cycles >= 0
        assert m.policy == "Trident"
        assert m.mapped_bytes_by_size is not None

    def test_machine_defaults_to_testbed_size(self):
        runner = NativeRunner(RunConfig("GUPS", "4KB", n_accesses=10))
        assert runner.machine.n_large_regions == NativeRunner.TESTBED_REGIONS

    def test_fragmented_run(self):
        m = NativeRunner(
            RunConfig(
                "GUPS",
                "Trident",
                fragmented=True,
                n_accesses=3000,
                machine_regions=64,
            )
        ).run()
        assert m.fault_large_attempts >= 1

    def test_request_recording(self):
        m = NativeRunner(
            RunConfig(
                "Redis",
                "2MB-THP",
                n_accesses=2000,
                machine_regions=96,
                record_requests=True,
            )
        ).run()
        assert m.request_latencies_ns
        assert m.percentile_latency_ns(99) >= m.percentile_latency_ns(50)

    def test_scanner_samples_phases(self):
        runner = NativeRunner(
            RunConfig("GUPS", "Trident", n_accesses=1000, machine_regions=48)
        )
        runner.run()
        labels = [s[0] for s in runner.scanner.samples]
        assert "alloc" in labels and "init" in labels


class TestVirtRunner:
    def test_small_virt_run(self):
        m = VirtRunner(
            VirtRunConfig(
                "GUPS", "Trident", "Trident", n_accesses=3000, guest_regions=48
            )
        ).run()
        assert m.accesses == 3000
        assert m.policy == "Trident+Trident"

    def test_pv_label(self):
        runner = VirtRunner(
            VirtRunConfig(
                "GUPS",
                "Trident",
                "Trident",
                pv=True,
                n_accesses=100,
                guest_regions=48,
            )
        )
        assert runner._label() == "Trident-pv+Trident"

    def test_guest_smaller_than_host(self):
        runner = VirtRunner(
            VirtRunConfig("GUPS", "4KB", "4KB", n_accesses=10, guest_regions=48)
        )
        assert (
            runner.vm.host.machine.total_bytes
            > runner.vm.guest.machine.total_bytes
        )


class TestCrossPolicyShapes:
    """The paper's core orderings at smoke-test scale."""

    @pytest.fixture(scope="class")
    def metrics(self):
        out = {}
        for policy in ("4KB", "2MB-THP", "Trident"):
            out[policy] = NativeRunner(
                RunConfig("GUPS", policy, n_accesses=25_000, machine_regions=64)
            ).run()
        return out

    def test_walk_cycles_strictly_improve(self, metrics):
        assert (
            metrics["Trident"].walk_cycles_per_access
            < metrics["2MB-THP"].walk_cycles_per_access
            < metrics["4KB"].walk_cycles_per_access
        )

    def test_performance_ordering(self, metrics):
        base = metrics["4KB"]
        assert metrics["Trident"].speedup_over(base) > metrics[
            "2MB-THP"
        ].speedup_over(base) > 1.0

    def test_trident_maps_large(self, metrics):

        assert metrics["Trident"].mapped_bytes_by_size[LARGE] > 0
        assert metrics["2MB-THP"].mapped_bytes_by_size[LARGE] == 0


class TestBarChart:
    def test_bars_scale_to_peak(self):
        from repro.experiments.report import bar_chart

        rows = [
            {"workload": "A", "perf:x": 1.0, "perf:y": 2.0},
            {"workload": "B", "perf:x": 0.5, "perf:y": 1.5},
        ]
        chart = bar_chart(rows, "workload", ["perf:x", "perf:y"], "T", width=10)
        lines = chart.splitlines()
        assert lines[0] == "T"
        # The peak (2.0) fills the full width.
        assert "#" * 10 in chart
        assert "2.000" in chart and "0.500" in chart

    def test_empty_rows(self):
        from repro.experiments.report import bar_chart

        assert "(no rows)" in bar_chart([], "x", ["y"], "T")

    def test_missing_keys_skipped(self):
        from repro.experiments.report import bar_chart

        rows = [{"workload": "A", "perf:x": 1.0}]
        chart = bar_chart(rows, "workload", ["perf:x", "perf:missing"])
        assert "perf:missing" not in chart
