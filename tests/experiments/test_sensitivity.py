"""Tests for the sensitivity sweeps (reduced sizes)."""

from repro.experiments.sensitivity import (
    run_fragmentation_sweep,
    run_tlb_capacity_sweep,
)


class TestTLBCapacitySweep:
    def test_more_1gb_entries_never_hurt(self):
        rows = run_tlb_capacity_sweep(
            workload="GUPS", l2_large_entries=(4, 64), n_accesses=15_000
        )
        by = {r["l2_1gb_entries"]: r for r in rows}
        assert (
            by[64]["walk_cycles_per_access"] <= by[4]["walk_cycles_per_access"]
        )
        assert by[64]["trident_vs_thp"] >= by[4]["trident_vs_thp"] - 0.02

    def test_enough_entries_eliminate_walks(self):
        rows = run_tlb_capacity_sweep(
            workload="GUPS", l2_large_entries=(64,), n_accesses=15_000
        )
        # 64 entries cover GUPS's 32 large pages entirely.
        assert rows[0]["walk_cycles_per_access"] < 1.0


class TestFragmentationSweep:
    def test_trident_beats_thp_at_every_severity(self):
        rows = run_fragmentation_sweep(
            workload="GUPS", residuals=(0.0, 0.3), n_accesses=15_000
        )
        for row in rows:
            assert row["trident_vs_thp"] > 1.1

    def test_fault_failures_appear_with_fragmentation(self):
        rows = run_fragmentation_sweep(
            workload="GUPS", residuals=(0.0, 0.3), n_accesses=15_000
        )
        by = {r["residual_cache_fraction"]: r for r in rows}
        assert by[0.0]["fault_large_fail_pct"] == 0.0
        assert by[0.3]["fault_large_fail_pct"] > 30.0
