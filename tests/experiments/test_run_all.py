"""run_all registry and selection."""

from repro.experiments.run_all import MODULES, main


class TestRunAll:
    def test_every_figure_and_table_registered(self):
        names = {name for name, _ in MODULES}
        for required in (
            "figure1",
            "figure2",
            "figure3",
            "figure4",
            "table3",
            "table4",
            "figure7",
            "figure9",
            "figure10",
            "figure11",
            "figure12",
            "figure13",
            "table5",
            "latency_micro",
            "bloat",
            "kernel_directmap",
            "extension_5level",
            "figure2_full",
            "sensitivity",
        ):
            assert required in names, required

    def test_modules_expose_main(self):
        for name, module in MODULES:
            assert callable(getattr(module, "main")), name

    def test_selection_runs_only_named(self, capsys):
        main(["latency_micro"])
        out = capsys.readouterr().out
        assert "latency_micro" in out
        assert "=== figure1 ===" not in out
