"""Orchestrator engine: unit registry, fault injection, resume, compile."""

import json
import multiprocessing as mp
import os
from dataclasses import asdict

import pytest

from repro.experiments.orchestrator import (
    GRID_TARGET,
    MODULE_TARGET,
    SweepConfig,
    SweepPlan,
    UnitSpec,
    _cached_results,
    build_plan,
    compile_report,
    derive_seed,
    execute_units,
    run_sweep,
    write_manifest,
)

HAS_FORK = "fork" in mp.get_all_start_methods()


def _spec(unit_id, target, kwargs, timeout_s=30.0, max_retries=1):
    return UnitSpec(
        unit_id=unit_id,
        target=f"repro.experiments.faults:{target}",
        kwargs=kwargs,
        seed=derive_seed(7, unit_id),
        timeout_s=timeout_s,
        max_retries=max_retries,
    )


class TestBuildPlan:
    def test_grid_modules_split_per_workload(self):
        plan = build_plan(modules=("figure2",), quick=True)
        from repro.experiments.figure2 import QUICK_KWARGS

        ids = [s.unit_id for s in plan.specs]
        assert ids == [f"figure2:{w}" for w in QUICK_KWARGS["workloads"]]
        assert all(s.target == GRID_TARGET for s in plan.specs)
        # quick kwargs (minus the workloads axis) ride along to every cell
        for spec in plan.specs:
            assert spec.kwargs["extra_kwargs"] == {
                k: v for k, v in QUICK_KWARGS.items() if k != "workloads"
            }
        assert plan.grids["figure2"].csv_name == "figure2"

    def test_full_mode_uses_run_defaults(self):
        plan = build_plan(modules=("figure9",), quick=False)
        from repro.workloads.registry import SHADED_EIGHT

        assert [s.unit_id for s in plan.specs] == [
            f"figure9:{w}" for w in SHADED_EIGHT
        ]
        assert all(s.kwargs["extra_kwargs"] == {} for s in plan.specs)

    def test_non_grid_modules_are_single_units(self):
        plan = build_plan(modules=("latency_micro", "sensitivity"), quick=True)
        assert [s.unit_id for s in plan.specs] == [
            "latency_micro",
            "sensitivity",
        ]
        assert all(s.target == MODULE_TARGET for s in plan.specs)
        assert plan.grids == {}

    def test_whole_registry_registers_many_units(self):
        plan = build_plan(quick=False)
        # every module contributes; grid modules contribute one per workload
        assert len(plan.specs) > 50
        assert len({s.unit_id for s in plan.specs}) == len(plan.specs)

    def test_unknown_module_rejected(self):
        with pytest.raises(KeyError, match="nope"):
            build_plan(modules=("nope",))

    def test_seeds_are_derived_not_root(self):
        plan = build_plan(modules=("figure2",), quick=True, root_seed=7)
        for spec in plan.specs:
            assert spec.seed == derive_seed(7, spec.unit_id)
            assert spec.kwargs["seed"] == spec.seed


class TestFaultInjection:
    def test_raising_unit_retried_with_backoff(self, tmp_path):
        specs = [
            _spec("boom", "raising_unit", {"message": "kapow"}, max_retries=2),
            _spec("fine", "healthy_unit", {"out_dir": str(tmp_path)}),
        ]
        results = execute_units(specs, jobs=2, backoff_base_s=0.05)
        boom = results["boom"]
        assert boom.status == "failed"
        assert boom.attempts == 3  # 1 try + 2 retries
        assert boom.backoffs_s == [0.05, 0.1]  # exponential
        assert "kapow" in boom.error
        assert len(boom.durations_s) == 3
        # the healthy unit is unaffected by its neighbour's failure
        fine = results["fine"]
        assert fine.status == "ok"
        assert fine.outputs and os.path.exists(fine.outputs[0])

    def test_timeout_unit_terminated(self, tmp_path):
        specs = [
            _spec(
                "sleepy",
                "sleeping_unit",
                {"sleep_s": 60.0},
                timeout_s=0.4,
                max_retries=1,
            ),
            _spec("fine", "healthy_unit", {"out_dir": str(tmp_path)}),
        ]
        results = execute_units(specs, jobs=2, backoff_base_s=0.01)
        sleepy = results["sleepy"]
        assert sleepy.status == "timeout"
        assert sleepy.attempts == 2
        assert sleepy.backoffs_s == [0.01]
        assert "0.4" in sleepy.error
        assert results["fine"].status == "ok"

    def test_crashing_unit_recorded(self, tmp_path):
        specs = [
            _spec("dead", "exiting_unit", {"code": 3}, max_retries=1),
            _spec("fine", "healthy_unit", {"out_dir": str(tmp_path)}),
        ]
        results = execute_units(specs, jobs=2, backoff_base_s=0.01)
        dead = results["dead"]
        assert dead.status == "crashed"
        assert dead.attempts == 2
        assert "exitcode" in dead.error
        assert results["fine"].status == "ok"

    def test_flaky_unit_recovers_on_retry(self, tmp_path):
        specs = [
            _spec(
                "flaky",
                "flaky_unit",
                {"out_dir": str(tmp_path), "fail_times": 1},
                max_retries=2,
            )
        ]
        results = execute_units(specs, jobs=1, backoff_base_s=0.01)
        flaky = results["flaky"]
        assert flaky.status == "ok"
        assert flaky.attempts == 2
        assert flaky.backoffs_s == [0.01]

    @pytest.mark.skipif(not HAS_FORK, reason="needs fork start method")
    def test_failed_cell_degrades_gracefully(self, tmp_path, monkeypatch):
        """A raising grid cell is recorded; survivors still compile."""
        import repro.experiments.figure3 as figure3

        real_run = figure3.run

        def sabotaged(workloads=figure3.WORKLOADS, seed=7):
            if "SVM" in workloads:
                raise RuntimeError("injected cell failure")
            return real_run(workloads=workloads, seed=seed)

        monkeypatch.setattr(figure3, "run", sabotaged)
        config = SweepConfig(
            jobs=2,
            root_seed=7,
            out_dir=str(tmp_path),
            max_retries=1,
            backoff_base_s=0.01,
            modules=("figure3", "latency_micro"),
            timeout_s=120.0,
        )
        manifest = run_sweep(config)
        by_id = {u["unit_id"]: u for u in manifest["units"]}
        assert by_id["figure3:SVM"]["status"] == "failed"
        assert by_id["figure3:SVM"]["attempts"] == 2
        assert "injected cell failure" in by_id["figure3:SVM"]["error"]
        assert by_id["figure3:Graph500"]["status"] == "ok"
        assert by_id["latency_micro"]["status"] == "ok"
        # the report compiler merged the surviving cell and flagged the gap
        merged = manifest["merged"]["figure3"]
        assert merged["missing_workloads"] == ["SVM"]
        csv_text = open(merged["csv"]).read()
        assert "Graph500" in csv_text and "SVM" not in csv_text
        # the failure did not stop the manifest or the metrics summary
        assert os.path.exists(manifest["manifest_path"])
        assert manifest["counts"] == {"ok": 2, "failed": 1}


class TestResume:
    def test_cached_results_skip_ok_units(self, tmp_path):
        art = tmp_path / "artifacts"
        specs = [
            _spec("a", "healthy_unit", {"out_dir": str(art), "token": "a"}),
            _spec("b", "raising_unit", {}),
        ]
        results = execute_units(specs, jobs=1, backoff_base_s=0.01)
        manifest_path = str(tmp_path / "manifest.json")
        write_manifest(
            {"units": [asdict(results[s.unit_id]) for s in specs]},
            manifest_path,
        )
        plan = SweepPlan(specs=specs, grids={})
        cached = _cached_results(plan, manifest_path)
        assert set(cached) == {"a"}
        assert cached["a"].cached is True
        assert cached["a"].seed == specs[0].seed

    def test_cached_results_require_outputs_on_disk(self, tmp_path):
        art = tmp_path / "artifacts"
        specs = [
            _spec("a", "healthy_unit", {"out_dir": str(art), "token": "a"})
        ]
        results = execute_units(specs, jobs=1)
        manifest_path = str(tmp_path / "manifest.json")
        write_manifest({"units": [asdict(results["a"])]}, manifest_path)
        os.remove(results["a"].outputs[0])
        plan = SweepPlan(specs=specs, grids={})
        assert _cached_results(plan, manifest_path) == {}

    def test_cached_results_ignore_other_seeds(self, tmp_path):
        art = tmp_path / "artifacts"
        specs = [
            _spec("a", "healthy_unit", {"out_dir": str(art), "token": "a"})
        ]
        results = execute_units(specs, jobs=1)
        manifest_path = str(tmp_path / "manifest.json")
        write_manifest({"units": [asdict(results["a"])]}, manifest_path)
        other = UnitSpec(
            unit_id="a",
            target=specs[0].target,
            kwargs=specs[0].kwargs,
            seed=derive_seed(8, "a"),  # different root seed
        )
        plan = SweepPlan(specs=[other], grids={})
        assert _cached_results(plan, manifest_path) == {}

    def test_run_sweep_resume_skips_completed(self, tmp_path):
        config = SweepConfig(
            jobs=1,
            out_dir=str(tmp_path),
            modules=("latency_micro",),
        )
        first = run_sweep(config)
        assert first["units"][0]["status"] == "ok"
        resumed = run_sweep(
            SweepConfig(
                jobs=1,
                out_dir=str(tmp_path),
                modules=("latency_micro",),
                resume=first["manifest_path"],
            )
        )
        assert resumed["units"][0]["status"] == "ok"
        assert resumed["units"][0]["cached"] is True


class TestCompileReport:
    def _grid(self, tmp_path, workloads, statuses):
        """A synthetic latency_micro grid (module has no summarize hook)."""
        from repro.experiments.orchestrator import GridPlan, UnitResult

        partial_dir = tmp_path / "partial"
        partial_dir.mkdir(exist_ok=True)
        cells, results = [], {}
        for workload, status in zip(workloads, statuses):
            unit_id = f"latency_micro:{workload}"
            path = str(partial_dir / f"{workload}.json")
            if status == "ok":
                with open(path, "w") as f:
                    json.dump([{"workload": workload, "x": 1.0}], f)
            cells.append((workload, unit_id, path))
            results[unit_id] = UnitResult(
                unit_id=unit_id, seed=0, status=status
            )
        plan = SweepPlan(
            specs=[],
            grids={
                "latency_micro": GridPlan("latency_micro", "merged", cells)
            },
        )
        return plan, results

    def test_merge_preserves_canonical_order(self, tmp_path):
        """Cells merge in registration order, not completion order."""
        plan, results = self._grid(
            tmp_path, ("W1", "W2", "W3"), ("ok", "ok", "ok")
        )
        merged = compile_report(plan, results, str(tmp_path))
        lines = open(merged["latency_micro"]["csv"]).read().splitlines()
        assert [ln.split(",")[0] for ln in lines[1:]] == ["W1", "W2", "W3"]
        assert merged["latency_micro"]["missing_workloads"] == []

    def test_failed_cells_are_skipped_and_flagged(self, tmp_path):
        plan, results = self._grid(
            tmp_path, ("W1", "W2", "W3"), ("ok", "failed", "ok")
        )
        merged = compile_report(plan, results, str(tmp_path))
        lines = open(merged["latency_micro"]["csv"]).read().splitlines()
        assert [ln.split(",")[0] for ln in lines[1:]] == ["W1", "W3"]
        assert merged["latency_micro"]["missing_workloads"] == ["W2"]

    def test_all_cells_failed_writes_no_csv(self, tmp_path):
        plan, results = self._grid(tmp_path, ("W1",), ("crashed",))
        merged = compile_report(plan, results, str(tmp_path))
        assert merged["latency_micro"]["csv"] is None
        assert merged["latency_micro"]["missing_workloads"] == ["W1"]
