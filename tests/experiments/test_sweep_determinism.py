"""Satellite 1: the sweep's determinism guarantee, as regression tests.

``--jobs N`` must reproduce ``--jobs 1`` bit-for-bit: unit seeds depend
only on (root seed, unit id), and the report compiler merges cells in
canonical order, so parallelism can never leak into the CSVs.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.orchestrator import (
    SweepConfig,
    derive_seed,
    run_sweep,
)

# Pinned values: if these move, every archived manifest and golden CSV
# silently stops being reproducible.  Do not update without bumping
# MANIFEST_VERSION and regenerating the goldens.
PINNED_SEEDS = {
    (7, "figure2:GUPS"): 6092616992431227633,
    (0, "a"): 8010819546481585132,
}


class TestDeriveSeed:
    def test_pinned_values_are_stable(self):
        for (root, unit_id), expected in PINNED_SEEDS.items():
            assert derive_seed(root, unit_id) == expected

    def test_distinct_from_root_seed(self):
        # units must not all inherit the raw root seed
        assert derive_seed(7, "figure2:GUPS") != 7

    @given(
        root=st.integers(min_value=0, max_value=2**32),
        unit_ids=st.lists(
            st.text(
                alphabet=st.characters(
                    whitelist_categories=("L", "N"),
                    whitelist_characters=":_-",
                ),
                min_size=1,
                max_size=40,
            ),
            min_size=2,
            max_size=20,
            unique=True,
        ),
    )
    @settings(max_examples=100, deadline=None)
    def test_seeds_unique_and_order_independent(self, root, unit_ids):
        forward = [derive_seed(root, u) for u in unit_ids]
        # unique per unit id under one root seed
        assert len(set(forward)) == len(unit_ids)
        # a pure function of (root, id): evaluation order cannot matter
        backward = [derive_seed(root, u) for u in reversed(unit_ids)]
        assert backward == list(reversed(forward))
        # in range for every RNG consumer (numpy wants < 2**63)
        assert all(0 <= s < 2**63 for s in forward)

    @given(
        unit_id=st.text(min_size=1, max_size=40),
        roots=st.lists(
            st.integers(min_value=0, max_value=2**32),
            min_size=2,
            max_size=5,
            unique=True,
        ),
    )
    @settings(max_examples=50, deadline=None)
    def test_root_seed_changes_every_unit_seed(self, unit_id, roots):
        seeds = [derive_seed(root, unit_id) for root in roots]
        assert len(set(seeds)) == len(roots)


class TestParallelSerialEquivalence:
    def _sweep(self, tmp_path, label, jobs):
        out = str(tmp_path / label)
        manifest = run_sweep(
            SweepConfig(
                jobs=jobs,
                root_seed=7,
                quick=True,
                out_dir=out,
                modules=("figure2",),
                timeout_s=300.0,
            )
        )
        assert all(u["status"] == "ok" for u in manifest["units"])
        with open(manifest["merged"]["figure2"]["csv"], "rb") as f:
            return f.read()

    def test_jobs4_matches_jobs1_byte_for_byte(self, tmp_path):
        serial = self._sweep(tmp_path, "serial", jobs=1)
        parallel = self._sweep(tmp_path, "parallel", jobs=4)
        assert serial == parallel
        assert serial  # not vacuously equal

    def test_same_root_seed_reproduces_itself(self, tmp_path):
        first = self._sweep(tmp_path, "first", jobs=1)
        again = self._sweep(tmp_path, "again", jobs=1)
        assert first == again


class TestTimelineReportDeterminism:
    """Satellite: the aggregated sweep_report.html is part of the
    determinism contract — jobs=4 must reproduce jobs=1 byte-for-byte."""

    def _sweep(self, tmp_path, label, jobs):
        out = str(tmp_path / label)
        manifest = run_sweep(
            SweepConfig(
                jobs=jobs,
                root_seed=7,
                quick=True,
                out_dir=out,
                modules=("figure2",),
                timeout_s=300.0,
                timeline=True,
            )
        )
        assert all(u["status"] == "ok" for u in manifest["units"])
        assert manifest["timeline"] is True
        assert manifest["report"] is not None
        with open(manifest["report"], "rb") as f:
            return f.read()

    def test_report_jobs4_matches_jobs1_byte_for_byte(self, tmp_path):
        serial = self._sweep(tmp_path, "serial", jobs=1)
        parallel = self._sweep(tmp_path, "parallel", jobs=4)
        assert serial == parallel
        assert b"<svg" in serial  # sparklines actually rendered
