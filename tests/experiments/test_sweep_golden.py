"""Satellite 3: golden-file smoke tests over the sweep pipeline.

Two tiny quick-mode artifacts — ``table3`` (a real simulator grid) and
``latency_micro`` (closed-form cost-model arithmetic) — are produced
through the *actual* sweep pipeline (``run_sweep`` at root seed 7) and
compared byte-for-byte against checked-in goldens.  Any drift anywhere in
the stack (seed derivation, simulator behaviour, cell merge, CSV
formatting) fails with a readable unified diff.

To regenerate after an intentional change:

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest -q \
        tests/experiments/test_sweep_golden.py
"""

import difflib
import os

import pytest

from repro.experiments.orchestrator import SweepConfig, run_sweep

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")
GOLDEN_ROOT_SEED = 7
GOLDEN_MODULES = ("table3", "latency_micro")
REGEN = os.environ.get("REPRO_REGEN_GOLDEN") == "1"


@pytest.fixture(scope="module")
def sweep_out(tmp_path_factory):
    out = str(tmp_path_factory.mktemp("golden_sweep"))
    manifest = run_sweep(
        SweepConfig(
            jobs=2,
            root_seed=GOLDEN_ROOT_SEED,
            quick=True,
            out_dir=out,
            modules=GOLDEN_MODULES,
            timeout_s=300.0,
        )
    )
    assert all(u["status"] == "ok" for u in manifest["units"])
    return out


def _check_golden(sweep_out: str, name: str) -> None:
    produced_path = os.path.join(sweep_out, f"{name}.csv")
    golden_path = os.path.join(GOLDEN_DIR, f"{name}.csv")
    with open(produced_path) as f:
        produced = f.read()
    if REGEN:
        os.makedirs(GOLDEN_DIR, exist_ok=True)
        with open(golden_path, "w") as f:
            f.write(produced)
        pytest.skip(f"regenerated {golden_path}")
    with open(golden_path) as f:
        golden = f.read()
    if produced != golden:
        diff = "\n".join(
            difflib.unified_diff(
                golden.splitlines(),
                produced.splitlines(),
                fromfile=f"golden/{name}.csv",
                tofile=f"produced/{name}.csv",
                lineterm="",
            )
        )
        pytest.fail(
            f"{name}.csv drifted from its golden (root seed "
            f"{GOLDEN_ROOT_SEED}, quick mode).\n"
            f"If the change is intentional, regenerate with "
            f"REPRO_REGEN_GOLDEN=1.\n{diff}"
        )


def test_table3_matches_golden(sweep_out):
    _check_golden(sweep_out, "table3")


def test_latency_micro_matches_golden(sweep_out):
    _check_golden(sweep_out, "latency_micro")
