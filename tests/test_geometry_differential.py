"""Full-system differential: ``--geometry x86`` is bitwise pre-redesign.

``tests/golden/x86_geometry_fingerprints.json`` freezes the complete
:func:`repro.sim.bench.state_fingerprint` (TLB LRU orders, walk
histograms, policy counters, accessed bits, simulated clock) of the
pre-redesign three-tier pipeline for the four headline policies under a
fixed cold zipf scenario.  Replaying the identical scenario through the
x86 geometry preset must reproduce every byte — any drift in the default
pipeline introduced by the N-level redesign fails here first.

Regenerate the golden (only after an *intentional* behaviour change)
with ``PYTHONPATH=src python scripts/gen_geometry_golden.py``.
"""

import json
import os

import numpy as np
import pytest

from repro.core import (
    Baseline4KPolicy,
    HawkEyePolicy,
    THPPolicy,
    TridentPolicy,
)
from repro.geometries import GEOMETRY_PRESETS
from repro.sim.bench import state_fingerprint
from repro.sim.system import System
from repro.workloads.access import zipf

GOLDEN_PATH = os.path.join(
    os.path.dirname(__file__), "golden", "x86_geometry_fingerprints.json"
)

POLICIES = {
    "Trident": TridentPolicy,
    "THP": THPPolicy,
    "Baseline4K": Baseline4KPolicy,
    "HawkEye": HawkEyePolicy,
}


def _canonical(obj):
    """JSON-stable form of a fingerprint: str keys, lists for tuples."""
    if isinstance(obj, dict):
        return {str(k): _canonical(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_canonical(v) for v in obj]
    return obj


@pytest.fixture(scope="module")
def golden():
    with open(GOLDEN_PATH) as f:
        return json.load(f)


@pytest.mark.parametrize("name", sorted(POLICIES))
def test_x86_geometry_matches_pre_redesign_fingerprint(name, golden):
    scenario = golden["scenario"]
    machine = GEOMETRY_PRESETS["x86"].machine(scenario["machine_regions"])
    system = System(machine, POLICIES[name], seed=scenario["seed"])
    system.daemon_period_accesses = scenario["daemon_period"]
    process = system.create_process()
    base = system.sys_mmap(process, scenario["footprint"])
    rng = np.random.default_rng(scenario["stream_seed"])
    stream = zipf(rng, base, scenario["footprint"], scenario["accesses"])
    result = system.touch_batch(process, stream)
    fp = _canonical(state_fingerprint(system, process))
    fp["batch_result"] = {
        "accesses": result.accesses,
        "translation_cycles": result.translation_cycles,
        "l1_hits": result.l1_hits,
        "l2_hits": result.l2_hits,
        "walks": result.walks,
        "faults": result.faults,
        "fault_ns": result.fault_ns,
        "walks_by_size": _canonical(result.walks_by_size),
    }
    expected = golden["policies"][name]
    assert fp == expected
