"""Tests for the paper-claims analysis layer."""


from repro.analysis.compare import check_all, load_report, render_markdown
from repro.analysis.paper_expectations import PAPER_CLAIMS


class TestClaims:
    def test_claims_have_unique_ids(self):
        ids = [c.id for c in PAPER_CLAIMS]
        assert len(ids) == len(set(ids))

    def test_claims_cover_every_major_experiment(self):
        sources = {c.source for c in PAPER_CLAIMS}
        for required in (
            "figure1",
            "figure2",
            "figure3",
            "figure7",
            "figure9",
            "figure10",
            "figure11",
            "figure12",
            "figure13",
            "table3",
            "table4",
            "table5",
            "latency_micro",
            "bloat",
        ):
            assert required in sources, required

    def test_bands_are_sane(self):
        for c in PAPER_CLAIMS:
            assert c.lo <= c.hi, c.id


class TestCompare:
    def _write_csv(self, tmp_path, name, rows):
        import csv

        path = tmp_path / f"{name}.csv"
        with open(path, "w", newline="") as f:
            writer = csv.DictWriter(f, fieldnames=list(rows[0]))
            writer.writeheader()
            writer.writerows(rows)

    def test_missing_reports_flagged(self, tmp_path):
        results = check_all(directory=str(tmp_path))
        assert all(r.status == "MISSING" for r in results)

    def test_in_band_and_out_of_band(self, tmp_path):
        self._write_csv(
            tmp_path,
            "latency_micro",
            [
                {"metric": "1GB fault, sync zero (ms)", "measured": 410.0},
                {"metric": "1GB fault, async pool (ms)", "measured": 99.0},
                {"metric": "1GB promotion, pv batched (us)", "measured": 497.0},
            ],
        )
        results = {r.claim.id: r for r in check_all(directory=str(tmp_path))}
        assert results["lat-1gb-fault-sync"].status == "OK"
        assert results["lat-1gb-fault-async"].status == "OUT-OF-BAND"
        assert results["lat-pv-batched"].status == "OK"

    def test_render_markdown(self, tmp_path):
        results = check_all(directory=str(tmp_path))
        text = render_markdown(results)
        assert "| # | Experiment / claim |" in text
        assert "claims in band" in text

    def test_load_report_missing(self, tmp_path):
        assert load_report("nope", str(tmp_path)) is None
