"""Tests for the configuration layer."""

import hypothesis.strategies as st
import pytest
from hypothesis import given

from repro.config import (
    SCALE_FACTOR,
    SCALED_GEOMETRY,
    X86_GEOMETRY,
    CostModel,
    MachineConfig,
    PageGeometry,
    WalkConfig,
    default_machine,
)

BASE, MID, LARGE = 0, 1, 2  # three-tier level indices (x86-shaped test geometry)


class TestPageGeometry:
    def test_x86_sizes(self):
        assert X86_GEOMETRY.base_size == 4096
        assert X86_GEOMETRY.mid_size == 2 << 20
        assert X86_GEOMETRY.large_size == 1 << 30
        assert X86_GEOMETRY.mids_per_large == 512

    def test_scale_factor(self):
        assert SCALE_FACTOR == X86_GEOMETRY.large_size // SCALED_GEOMETRY.large_size

    def test_validation(self):
        with pytest.raises(ValueError):
            PageGeometry(12, 9, 9)  # mid == large
        with pytest.raises(ValueError):
            PageGeometry(12, 0, 5)
        with pytest.raises(ValueError):
            PageGeometry(0, 4, 8)

    @given(
        st.integers(10, 14),
        st.integers(1, 8),
        st.integers(9, 20),
    )
    def test_alignment_laws(self, base_shift, mid_order, large_order):
        if mid_order >= large_order:
            return
        g = PageGeometry(base_shift, mid_order, large_order)
        for size in (BASE, MID, LARGE):
            nbytes = g.bytes_for(size)
            for addr in (0, nbytes - 1, nbytes, 3 * nbytes + 17):
                down = g.align_down(addr, size)
                up = g.align_up(addr, size)
                assert down <= addr <= up
                assert down % nbytes == 0 and up % nbytes == 0
                assert up - down in (0, nbytes)
                assert g.is_aligned(down, size)

    def test_frames_for_consistency(self):
        g = SCALED_GEOMETRY
        assert g.frames_for(BASE) == 1
        assert g.frames_for(MID) * g.mids_per_large == g.frames_for(
            LARGE
        )


class TestWalkConfig:
    def test_five_level_counts(self):
        w = WalkConfig(levels_base=5)
        assert w.native_walk_accesses(BASE) == 5
        assert w.nested_walk_accesses(BASE, BASE) == 35

    def test_leaf_cached_prob_per_size(self):
        w = WalkConfig()
        assert w.leaf_cached_prob(BASE) == 0.0
        assert w.leaf_cached_prob(MID) < w.leaf_cached_prob(
            LARGE
        )


class TestMachineConfig:
    def test_rejects_partial_regions(self):
        with pytest.raises(ValueError):
            MachineConfig(
                geometry=SCALED_GEOMETRY,
                total_frames=SCALED_GEOMETRY.frames_per_large + 1,
            )

    def test_default_machine_sizes(self):
        m = default_machine(8)
        assert m.n_large_regions == 8
        assert m.total_bytes == 8 * SCALED_GEOMETRY.large_size

    def test_default_machine_uses_scaled_tlb_and_cost(self):
        m = default_machine(8)
        assert m.tlb.l2_mid is not None  # the scaled preset
        # Scaled cost model: zeroing a scaled large page costs real-1GB time.
        assert m.cost.zero_ns(m.geometry.large_size) == pytest.approx(
            CostModel().zero_ns(X86_GEOMETRY.large_size)
        )

    def test_x86_machine_keeps_real_shapes(self):
        m = default_machine(4, X86_GEOMETRY)
        assert m.tlb.l2_mid is None
        assert m.cost.zero_bandwidth_bytes_per_ns == pytest.approx(2.6)

    def test_scaled_copy(self):
        m = default_machine(8)
        m2 = m.scaled(16 * SCALED_GEOMETRY.frames_per_large)
        assert m2.n_large_regions == 16
        assert m2.geometry == m.geometry
