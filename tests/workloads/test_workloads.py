"""Tests for the workload models and access-pattern generators."""

import numpy as np
import pytest

from repro.config import SCALE_FACTOR, default_machine
from repro.core.trident import TridentPolicy
from repro.sim.system import System
from repro.workloads import access
from repro.workloads.registry import (
    ALL_WORKLOADS,
    REGISTRY,
    SHADED_EIGHT,
    get_workload,
)

BASE, MID, LARGE = 0, 1, 2  # three-tier level indices (x86-shaped test geometry)

G = default_machine(8).geometry


class _FakeAPI:
    """Minimal WorkloadAPI double backed by a plain AddressSpace."""

    def __init__(self, seed=0):
        from repro.vm.addrspace import AddressSpace

        self.aspace = AddressSpace(G)
        self.rng = np.random.default_rng(seed)
        self.touched = 0
        self.phases = []
        self.freed = []

    def mmap(self, nbytes, kind="heap"):
        return self.aspace.mmap(nbytes, name=kind).start

    def munmap(self, addr):
        self.freed.append(addr)
        self.aspace.munmap(addr)

    def touch(self, addresses):
        self.touched += len(addresses)

    def phase(self, label):
        self.phases.append(label)


class TestAccessPatterns:
    def test_uniform_in_bounds(self):
        rng = np.random.default_rng(0)
        vas = access.uniform(rng, 1000, 5000, 200)
        assert len(vas) == 200
        assert (vas >= 1000).all() and (vas < 6000).all()

    def test_uniform_rejects_bad_params(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            access.uniform(rng, 0, 0, 10)

    def test_zipf_is_skewed(self):
        rng = np.random.default_rng(0)
        vas = access.zipf(rng, 0, 1 << 22, 20_000, alpha=1.3)
        pages, counts = np.unique(vas >> 12, return_counts=True)
        counts = np.sort(counts)[::-1]
        # Hot pages take a disproportionate share.
        assert counts[:10].sum() > 0.2 * counts.sum()

    def test_zipf_rejects_alpha_below_one(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            access.zipf(rng, 0, 4096, 10, alpha=1.0)

    def test_sequential_wraps(self):
        vas = access.sequential(0, 1024, 100, stride=64)
        assert vas.max() < 1024
        assert vas[0] == 0 and vas[1] == 64

    def test_sequential_rejects_bad_stride(self):
        with pytest.raises(ValueError):
            access.sequential(0, 1024, 10, stride=0)

    def test_strided_multiples(self):
        rng = np.random.default_rng(0)
        vas = access.strided(rng, 0, 1 << 16, 100, stride=512)
        assert (vas % 512 == 0).all()

    def test_pointer_chase_in_bounds(self):
        rng = np.random.default_rng(0)
        vas = access.pointer_chase(rng, 4096, 1 << 16, 100, node=128)
        assert (vas >= 4096).all()
        assert (vas < 4096 + (1 << 16)).all()

    def test_mixture_respects_weights(self):
        rng = np.random.default_rng(0)
        a = np.zeros(100, dtype=np.int64)
        b = np.ones(100, dtype=np.int64)
        out = access.mixture(rng, [(0.9, a), (0.1, b)], 5000)
        assert 0.85 < (out == 0).mean() < 0.95

    def test_mixture_rejects_bad_weights(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            access.mixture(rng, [(0.0, np.zeros(1, dtype=np.int64))], 10)


class TestRegistry:
    def test_all_twelve_workloads_present(self):
        assert len(ALL_WORKLOADS) == 12
        for name in (
            "XSBench",
            "SVM",
            "Graph500",
            "CC",
            "BC",
            "PR",
            "CG",
            "Btree",
            "GUPS",
            "Redis",
            "Memcached",
            "Canneal",
        ):
            assert name in REGISTRY

    def test_shaded_eight(self):
        assert set(SHADED_EIGHT) == {
            "XSBench",
            "SVM",
            "Graph500",
            "Btree",
            "GUPS",
            "Redis",
            "Memcached",
            "Canneal",
        }

    def test_unknown_workload_rejected(self):
        with pytest.raises(KeyError):
            get_workload("nope")

    def test_footprints_scale(self):
        w = get_workload("GUPS")
        assert w.footprint_bytes == int(32.0 * (1 << 30)) // SCALE_FACTOR

    def test_specs_have_sane_calibration(self):
        for name in ALL_WORKLOADS:
            spec = REGISTRY[name].spec
            assert spec.cpi_base > 0
            assert 0 < spec.walk_exposure <= 1
            assert spec.touches_per_page > 0
            assert spec.paper_footprint_gb > 1


@pytest.mark.parametrize("name", ALL_WORKLOADS)
class TestEveryWorkload:
    def test_setup_allocates_footprint(self, name):
        w = get_workload(name)
        api = _FakeAPI()
        w.setup(api)
        mapped = api.aspace.mapped_bytes
        # Graph500 frees its edge list after building the CSR, so its final
        # footprint is well below the Table 2 peak; everyone else ends near
        # the declared (scaled) footprint.
        low = 0.5 if name == "Graph500" else 0.75
        assert low * w.footprint_bytes <= mapped <= 1.35 * w.footprint_bytes

    def test_access_stream_targets_mapped_memory(self, name):
        w = get_workload(name)
        api = _FakeAPI()
        w.setup(api)
        stream = w.access_stream(api, 2000)
        assert len(stream) == 2000
        misses = sum(1 for va in stream[:200] if api.aspace.find_vma(int(va)) is None)
        assert misses == 0

    def test_stream_is_deterministic_per_seed(self, name):
        def run(seed):
            w = get_workload(name)
            api = _FakeAPI(seed)
            w.setup(api)
            return w.access_stream(api, 500)

        assert (run(3) == run(3)).all()


class TestAllocationCharacter:
    """Table 3's driver: pre-allocators vs incremental allocators."""

    def test_preallocators_are_large_mappable_up_front(self):
        from repro.vm.mappability import mappable_bytes

        for name in ("GUPS", "XSBench"):
            w = get_workload(name)
            api = _FakeAPI()
            w.setup(api)
            large = mappable_bytes(api.aspace, LARGE)
            assert large > 0.85 * w.footprint_bytes, name

    def test_incremental_allocators_fault_no_large_pages(self):
        system = System(default_machine(96), TridentPolicy, seed=4)
        p = system.create_process("redis")
        w = get_workload("Redis")

        class API(_FakeAPI):
            def __init__(self):
                self.rng = np.random.default_rng(0)
                self.phases = []

            def mmap(self, nbytes, kind="heap"):
                return system.sys_mmap(p, nbytes, kind)

            def munmap(self, addr):
                system.sys_munmap(p, addr)

            def touch(self, addresses):
                system.touch_batch(p, addresses)

            def phase(self, label):
                self.phases.append(label)

        w.setup(API())
        # Redis inserts incrementally: the fault handler maps (almost) no
        # large pages (Table 3: 0GB page-fault-only).  The couple it does
        # map cover the stack segment, which Trident (unlike hugetlbfs)
        # CAN back with large pages - the paper's Section 7 point.

        large_mapped = system.policy.stats.fault_mapped[LARGE]
        assert large_mapped * G.large_size < 0.1 * w.footprint_bytes


class TestIterBatches:
    """iter_batches is the single streaming protocol the runner consumes."""

    @pytest.mark.parametrize("name", ALL_WORKLOADS)
    def test_batches_reassemble_the_stream(self, name):
        def stream_of(seed):
            w = get_workload(name)
            api = _FakeAPI(seed)
            w.setup(api)
            return w, api

        w1, api1 = stream_of(3)
        w2, api2 = stream_of(3)
        whole = np.asarray(w1.access_stream(api1, 700), dtype=np.int64)
        batches = list(w2.iter_batches(api2, 700, batch=256))
        assert [len(b) for b in batches] == [256, 256, 188]
        np.testing.assert_array_equal(np.concatenate(batches), whole)

    def test_batches_are_contiguous_int64(self):
        w = get_workload(ALL_WORKLOADS[0])
        api = _FakeAPI(1)
        w.setup(api)
        for chunk in w.iter_batches(api, 1000, batch=300):
            assert chunk.dtype == np.int64
            assert chunk.flags["C_CONTIGUOUS"]

    def test_default_batch_covers_short_streams_whole(self):
        w = get_workload(ALL_WORKLOADS[0])
        api = _FakeAPI(1)
        w.setup(api)
        batches = list(w.iter_batches(api, 500))
        assert len(batches) == 1 and len(batches[0]) == 500
