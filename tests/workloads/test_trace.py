"""Tests for trace record/replay."""

import numpy as np

from repro.workloads.trace import Trace, TraceWorkload, record_trace


class TestRecord:
    def test_record_captures_ops_and_accesses(self):
        trace = record_trace("GUPS", n_accesses=2_000)
        assert trace.workload == "GUPS"
        assert any(op == "mmap" for op, _, _ in trace.ops)
        assert len(trace.accesses) > 2_000  # setup touches + stream

    def test_record_is_deterministic(self):
        t1 = record_trace("Redis", n_accesses=1_000, seed=5)
        t2 = record_trace("Redis", n_accesses=1_000, seed=5)
        assert t1.ops == t2.ops
        assert (t1.accesses == t2.accesses).all()

    def test_munmap_recorded_by_index(self):
        trace = record_trace("SVM", n_accesses=500)
        assert any(op == "munmap" for op, _, _ in trace.ops)


class TestSaveLoad:
    def test_roundtrip(self, tmp_path):
        trace = record_trace("GUPS", n_accesses=1_000)
        path = str(tmp_path / "t.npz")
        trace.save(path)
        loaded = Trace.load(path)
        assert loaded.workload == trace.workload
        assert loaded.ops == trace.ops
        assert loaded.kinds == trace.kinds
        assert (loaded.accesses == trace.accesses).all()


class TestReplay:
    def test_replay_reproduces_layout_and_stream(self):
        trace = record_trace("GUPS", n_accesses=1_000)
        replayed = TraceWorkload(trace)

        class API:
            def __init__(self):
                from repro.config import SCALED_GEOMETRY
                from repro.vm.addrspace import AddressSpace

                self.rng = np.random.default_rng(0)
                self.aspace = AddressSpace(SCALED_GEOMETRY)

            def mmap(self, nbytes, kind="heap"):
                return self.aspace.mmap(nbytes, name=kind).start

            def munmap(self, addr):
                self.aspace.munmap(addr)

            def touch(self, addresses):
                pass

            def phase(self, label):
                pass

        api = API()
        replayed.setup(api)
        stream = replayed.access_stream(api, 500)
        assert len(stream) == 500
        # Every replayed access lands inside a mapped VMA.
        for va in stream[:50]:
            assert api.aspace.find_vma(int(va)) is not None

    def test_replay_through_the_real_runner_path(self):
        from repro.config import default_machine
        from repro.core.trident import TridentPolicy
        from repro.sim.system import System

        trace = record_trace("GUPS", n_accesses=800)
        workload = TraceWorkload(trace)
        regions = workload.footprint_bytes // default_machine(1).geometry.large_size
        system = System(default_machine(max(16, regions * 2)), TridentPolicy, seed=1)
        p = system.create_process("replay")

        class API:
            rng = np.random.default_rng(0)

            def mmap(self, nbytes, kind="heap"):
                return system.sys_mmap(p, nbytes, kind)

            def munmap(self, addr):
                system.sys_munmap(p, addr)

            def touch(self, addresses):
                system.touch_batch(p, addresses)

            def phase(self, label):
                pass

        api = API()
        workload.setup(api)
        stream = workload.access_stream(api, 500)
        system.touch_batch(p, stream)
        assert p.tlb.stats.accesses == 500
