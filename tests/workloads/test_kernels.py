"""Tests for the structural workload kernels."""

import numpy as np
import pytest

from repro.workloads.kernels import BPlusTree, CSRGraph, HashIndex

BASE, MID, LARGE = 0, 1, 2  # three-tier level indices (x86-shaped test geometry)


class TestBPlusTree:
    def make(self, size=1 << 22, node=256, fanout=16):
        return BPlusTree(0x1000_0000, size, node, fanout)

    def test_levels_are_geometric(self):
        t = self.make()
        for a, b in zip(t.level_sizes, t.level_sizes[1:]):
            assert b == a * t.fanout

    def test_lookup_path_is_root_to_leaf(self):
        t = self.make()
        path = t.lookup_path(12345)
        assert len(path) == t.height
        assert path[0] == t.node_addr(0, 0)  # always starts at the root
        # Addresses descend through disjoint level areas, in order.
        for level, addr in enumerate(path):
            lo = t.node_addr(level, 0)
            hi = t.node_addr(level, t.level_sizes[level] - 1)
            assert lo <= addr <= hi

    def test_same_key_same_path(self):
        t = self.make()
        assert t.lookup_path(99) == t.lookup_path(99)

    def test_different_keys_share_upper_levels(self):
        t = self.make()
        p1, p2 = t.lookup_path(0), t.lookup_path(1)
        assert p1[0] == p2[0]  # same root

    def test_lookup_stream_shape(self):
        t = self.make()
        keys = np.arange(100)
        stream = t.lookup_stream(keys)
        assert len(stream) == 100 * t.height

    def test_addresses_inside_region(self):
        size = 1 << 20
        t = BPlusTree(0x5000, size)
        stream = t.lookup_stream(np.arange(500))
        assert (stream >= 0x5000).all()
        assert (stream < 0x5000 + size).all()

    def test_validation(self):
        with pytest.raises(ValueError):
            BPlusTree(0, 100, node_bytes=256)
        with pytest.raises(ValueError):
            BPlusTree(0, 1 << 20, fanout=1)

    def test_root_is_hottest_address(self):
        """The TLB-relevant property: upper levels concentrate accesses."""
        t = self.make()
        rng = np.random.default_rng(0)
        stream = t.lookup_stream(rng.integers(0, 1 << 30, 500))
        addrs, counts = np.unique(stream, return_counts=True)
        assert counts.max() == 500  # the root appears in every lookup
        assert addrs[counts.argmax()] == t.node_addr(0, 0)


class TestCSRGraph:
    def make(self, n=1000, deg=8):
        rng = np.random.default_rng(1)
        return CSRGraph(0x10_0000, 0x100_0000, 0x1000_0000, n, deg, rng)

    def test_row_ptr_monotone(self):
        g = self.make()
        assert (np.diff(g.row_ptr) >= 1).all()

    def test_vertex_step_structure(self):
        g = self.make()
        step = g.vertex_step(5)
        degree = int(g.row_ptr[6] - g.row_ptr[5])
        # 2 row-pointer reads + (edge read + visited touch) per neighbour.
        assert len(step) == 2 + 2 * degree

    def test_bfs_stream_length(self):
        g = self.make()
        stream = g.bfs_stream(5_000)
        assert len(stream) == 5_000

    def test_streams_touch_all_three_arrays(self):
        g = self.make()
        stream = g.bfs_stream(5_000)
        assert ((stream >= 0x10_0000) & (stream < 0x100_0000)).any()  # rows
        assert ((stream >= 0x100_0000) & (stream < 0x1000_0000)).any()  # edges
        assert (stream >= 0x1000_0000).any()  # visited

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            CSRGraph(0, 0, 0, 1, 4, rng)


class TestHashIndex:
    def make(self):
        rng = np.random.default_rng(2)
        return HashIndex(0x1000, 0x10_0000, 0x100_0000, 512, 4096, 1024, rng)

    def test_get_path_shape(self):
        h = self.make()
        path = h.get_path(42)
        assert path[0] == 0x1000 + (42 % 512) * 8  # bucket head first
        assert path[-1] >= 0x100_0000  # value last
        assert 3 <= len(path) <= 6  # head + 1..4 chain entries + value

    def test_get_stream(self):
        h = self.make()
        stream = h.get_stream(np.arange(200))
        assert len(stream) >= 3 * 200

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            HashIndex(0, 0, 0, 0, 1, 64, rng)


class TestStructuralVsStatistical:
    """The validation the kernels exist for: structural streams hit the TLB
    qualitatively like their statistical stand-ins."""

    def test_btree_stream_is_tlb_hostile_like_pointer_chase(self):
        from repro.config import SCALED_TLB, SCALED_GEOMETRY, WalkConfig
        from repro.tlb.hierarchy import TLBHierarchy
        from repro.vm.pagetable import PageTable

        geometry = SCALED_GEOMETRY
        size = 64 << 20  # 64MB of nodes: leaves far exceed TLB reach
        base = 0x7000_0000_0000
        tree = BPlusTree(base, size)
        rng = np.random.default_rng(3)
        stream = tree.lookup_stream(rng.integers(0, 1 << 30, 4_000))

        table = PageTable(geometry)
        for va in range(base, base + size, geometry.base_size):
            table.map_page(va, BASE, (va - base) // geometry.base_size)
        tlb = TLBHierarchy(SCALED_TLB, WalkConfig(), geometry)
        for va in stream:
            tlb.access(int(va), table.translate(int(va)))
        # Leaf visits miss a lot; root/inner hits keep it below uniform.
        miss_rate = tlb.stats.walks / tlb.stats.accesses
        assert 0.05 < miss_rate < 0.8
