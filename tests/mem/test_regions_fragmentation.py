"""Tests for region counters, FMFI, the fragmentation injector, and zero-fill."""

import random

import numpy as np
import pytest

from repro.config import CostModel, PageGeometry
from repro.mem.buddy import BuddyAllocator
from repro.mem.fragmentation import FragmentationInjector, fmfi
from repro.mem.regions import RegionTracker
from repro.mem.zerofill import ZeroFillEngine

BASE, MID, LARGE = 0, 1, 2  # three-tier level indices (x86-shaped test geometry)

GEOM = PageGeometry(base_shift=12, mid_order=2, large_order=4)  # large = 16 frames


def make_tracked(n_regions=4):
    total = n_regions * GEOM.frames_per_large
    tracker = RegionTracker(total, GEOM)
    buddy = BuddyAllocator(total, GEOM.large_order, listeners=(tracker,))
    return buddy, tracker


class TestRegionTracker:
    def test_initial_counts(self):
        _, tracker = make_tracked()
        assert (tracker.free_frames == 16).all()
        assert (tracker.unmovable_frames == 0).all()

    def test_alloc_free_updates_counts(self):
        buddy, tracker = make_tracked()
        pfn = buddy.alloc(2, movable=False)
        region = tracker.region_of(pfn)
        assert tracker.free_frames[region] == 12
        assert tracker.unmovable_frames[region] == 4
        buddy.free(pfn)
        assert tracker.free_frames[region] == 16
        assert tracker.unmovable_frames[region] == 0

    def test_counts_match_ground_truth_after_churn(self):
        buddy, tracker = make_tracked(n_regions=8)
        rng = random.Random(7)
        live = []
        for _ in range(300):
            if live and rng.random() < 0.4:
                buddy.free(live.pop(rng.randrange(len(live))))
            else:
                pfn = buddy.try_alloc(rng.randrange(3), movable=rng.random() < 0.8)
                if pfn is not None:
                    live.append(pfn)
        tracker.check_against(buddy.frame_state)

    def test_best_source_excludes_unmovable_and_free_regions(self):
        buddy, tracker = make_tracked(n_regions=3)
        # Region 0: one unmovable frame -> excluded.
        buddy.alloc_at(0, 0, movable=False)
        # Region 1: half full, movable -> candidate.
        buddy.alloc_at(16, 3, movable=True)
        # Region 2: untouched (fully free) -> excluded.
        sources = tracker.best_source_regions()
        assert sources == [1]

    def test_best_source_orders_by_most_free(self):
        buddy, tracker = make_tracked(n_regions=3)
        buddy.alloc_at(0, 3)  # region 0: 8 used
        buddy.alloc_at(16, 2)  # region 1: 4 used -> more free, cheaper
        buddy.alloc_at(32, 0)  # region 2: 1 used -> cheapest
        assert tracker.best_source_regions() == [2, 1, 0]

    def test_best_target_orders_by_fullest(self):
        buddy, tracker = make_tracked(n_regions=3)
        buddy.alloc_at(0, 3)  # region 0: 8 free
        buddy.alloc_at(16, 2)  # region 1: 12 free
        targets = tracker.best_target_regions(exclude={2})
        assert targets == [0, 1]

    def test_rejects_non_multiple_total(self):
        with pytest.raises(ValueError):
            RegionTracker(GEOM.frames_per_large + 1, GEOM)


class TestFMFI:
    def test_unfragmented_is_zero(self):
        buddy, _ = make_tracked()
        assert fmfi(buddy, GEOM.large_order) == 0.0

    def test_no_free_memory_is_zero(self):
        buddy = BuddyAllocator(16, 4)
        buddy.alloc(4)
        assert fmfi(buddy, 4) == 0.0

    def test_scattered_frees_fragment_large_order(self):
        buddy, _ = make_tracked(n_regions=4)
        pfns = [buddy.alloc(0) for _ in range(64)]
        for pfn in pfns[::2]:  # free every other frame: nothing coalesces
            buddy.free(pfn)
        assert fmfi(buddy, GEOM.large_order) == 1.0
        assert fmfi(buddy, 0) == 0.0

    def test_fmfi_monotone_in_order(self):
        buddy, _ = make_tracked(n_regions=4)
        rng = random.Random(3)
        pfns = [buddy.alloc(0) for _ in range(64)]
        for pfn in rng.sample(pfns, 40):
            buddy.free(pfn)
        values = [fmfi(buddy, o) for o in range(GEOM.large_order + 1)]
        assert values == sorted(values)


class TestFragmentationInjector:
    def test_fragment_raises_large_order_fmfi(self):
        buddy, _ = make_tracked(n_regions=16)
        inj = FragmentationInjector(buddy, np.random.default_rng(1))
        index = inj.fragment(fill_fraction=0.95, residual_fraction=0.4)
        assert index > 0.8
        assert inj.residual_frames > 0

    def test_reclaim_returns_scattered_memory(self):
        buddy, _ = make_tracked(n_regions=16)
        inj = FragmentationInjector(buddy, np.random.default_rng(1))
        inj.fragment(residual_fraction=0.5)
        before = buddy.free_frames
        freed = inj.reclaim(20)
        assert len(freed) == 20
        assert buddy.free_frames == before + 20

    def test_reclaim_all_empties_cache(self):
        buddy, _ = make_tracked(n_regions=8)
        inj = FragmentationInjector(buddy, np.random.default_rng(2))
        inj.fragment(residual_fraction=0.5)
        inj.reclaim_all()
        assert inj.residual_frames == 0

    def test_release_unmovable(self):
        buddy, tracker = make_tracked(n_regions=8)
        inj = FragmentationInjector(buddy, np.random.default_rng(2))
        inj.fragment(unmovable_prob=0.1)
        assert inj.unmovable_count > 0
        inj.release_unmovable()
        assert (tracker.unmovable_frames == 0).all()

    def test_notice_moved_updates_bookkeeping(self):
        buddy, _ = make_tracked(n_regions=8)
        inj = FragmentationInjector(buddy, np.random.default_rng(2))
        inj.fragment(residual_fraction=1.0, unmovable_prob=0.0)
        old = inj.cache_frames()[0]
        assert inj.notice_moved(old, 9999)
        assert not inj.notice_moved(old, 1234)

    def test_bad_residual_fraction_rejected(self):
        buddy, _ = make_tracked()
        inj = FragmentationInjector(buddy)
        with pytest.raises(ValueError):
            inj.fragment(residual_fraction=1.5)


class TestZeroFillEngine:
    def make_engine(self, n_regions=4, pool_capacity=2):
        buddy, _ = make_tracked(n_regions)
        engine = ZeroFillEngine(buddy, GEOM, CostModel(), pool_capacity)
        return buddy, engine

    def test_background_fill_populates_pool(self):
        buddy, engine = self.make_engine()
        spent = engine.background_fill(budget_ns=1e12)
        assert engine.pool_size == 2
        assert spent > 0
        assert buddy.used_frames == 2 * GEOM.frames_per_large

    def test_take_zeroed_transfers_ownership(self):
        buddy, engine = self.make_engine()
        engine.background_fill(1e12)
        pfn = engine.take_zeroed()
        assert pfn is not None
        assert engine.pool_size == 1
        buddy.free(pfn)  # caller owns the allocation

    def test_take_zeroed_empty_pool_returns_none(self):
        _, engine = self.make_engine()
        assert engine.take_zeroed() is None

    def test_budget_limits_fill(self):
        _, engine = self.make_engine()
        one_block = CostModel().zero_ns(GEOM.large_size)
        engine.background_fill(one_block * 1.5)
        assert engine.pool_size == 1

    def test_release_all_returns_memory(self):
        buddy, engine = self.make_engine()
        engine.background_fill(1e12)
        released = engine.release_all()
        assert released == 2
        assert buddy.used_frames == 0

    def test_fault_latency_async_much_faster_than_sync(self):
        # The paper's headline: 400 ms sync vs 2.7 ms with async zero-fill.
        x86 = PageGeometry(12, 9, 18)
        buddy = BuddyAllocator(1 << 18, 18)
        engine = ZeroFillEngine(buddy, x86, CostModel())
        sync_ns = engine.fault_ns(LARGE, used_pool=False)
        async_ns = engine.fault_ns(LARGE, used_pool=True)
        assert 300e6 < sync_ns < 500e6  # ~400 ms
        assert 2e6 < async_ns < 4e6  # ~2.7 ms
        assert sync_ns / async_ns > 100

    def test_rejects_negative_pool(self):
        buddy, _ = make_tracked()
        with pytest.raises(ValueError):
            ZeroFillEngine(buddy, GEOM, CostModel(), pool_capacity=-1)
