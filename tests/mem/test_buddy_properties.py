"""Property-based tests (hypothesis) for the buddy allocator."""

import hypothesis.strategies as st
from hypothesis import given, settings
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro.mem.buddy import BuddyAllocator, OutOfMemoryError
from repro.obs import Observability

TOTAL = 256
MAX_ORDER = 6


class BuddyMachine(RuleBasedStateMachine):
    """Random alloc/free/alloc_at sequences preserve all invariants."""

    def __init__(self):
        super().__init__()
        self.buddy = BuddyAllocator(TOTAL, MAX_ORDER)
        self.live: list[int] = []

    @rule(order=st.integers(0, MAX_ORDER), movable=st.booleans())
    def alloc(self, order, movable):
        pfn = self.buddy.try_alloc(order, movable)
        if pfn is not None:
            assert pfn % (1 << order) == 0
            self.live.append(pfn)

    @precondition(lambda self: self.live)
    @rule(data=st.data())
    def free(self, data):
        idx = data.draw(st.integers(0, len(self.live) - 1))
        self.buddy.free(self.live.pop(idx))

    @rule(pfn=st.integers(0, TOTAL - 1), order=st.integers(0, 3))
    def alloc_at(self, pfn, order):
        pfn &= ~((1 << order) - 1)
        try:
            self.buddy.alloc_at(pfn, order)
            self.live.append(pfn)
        except ValueError:
            pass  # occupied or misaligned: rejection is the contract

    @invariant()
    def counters_consistent(self):
        live_frames = sum(1 << self.buddy.allocation_at(p)[0] for p in self.live)
        assert self.buddy.used_frames == live_frames
        assert self.buddy.free_frames == TOTAL - live_frames

    @invariant()
    def full_check(self):
        self.buddy.check_invariants()


TestBuddyMachine = BuddyMachine.TestCase
TestBuddyMachine.settings = settings(max_examples=30, stateful_step_count=40)


class InstrumentedBuddyMachine(RuleBasedStateMachine):
    """The registry's free-list gauges track the allocator exactly.

    The gauges are collector-mirrored at snapshot time, so after running
    the collectors they must equal ``free_blocks(order)`` for every order
    after an arbitrary alloc/free/alloc_at sequence."""

    def __init__(self):
        super().__init__()
        self.obs = Observability()
        self.buddy = BuddyAllocator(TOTAL, MAX_ORDER, obs=self.obs)
        self.live: list[int] = []

    @rule(order=st.integers(0, MAX_ORDER), movable=st.booleans())
    def alloc(self, order, movable):
        pfn = self.buddy.try_alloc(order, movable)
        if pfn is not None:
            self.live.append(pfn)

    @precondition(lambda self: self.live)
    @rule(data=st.data())
    def free(self, data):
        idx = data.draw(st.integers(0, len(self.live) - 1))
        self.buddy.free(self.live.pop(idx))

    @rule(pfn=st.integers(0, TOTAL - 1), order=st.integers(0, 3))
    def alloc_at(self, pfn, order):
        pfn &= ~((1 << order) - 1)
        try:
            self.buddy.alloc_at(pfn, order)
            self.live.append(pfn)
        except ValueError:
            pass

    @invariant()
    def gauges_match_free_lists(self):
        metrics = self.obs.metrics
        metrics.collect()
        for order in range(MAX_ORDER + 1):
            assert (
                metrics.value("buddy_free_blocks", order=order)
                == self.buddy.free_blocks(order)
            ), f"gauge out of sync at order {order}"
        assert metrics.value("buddy_free_frames") == self.buddy.free_frames


TestInstrumentedBuddyMachine = InstrumentedBuddyMachine.TestCase
TestInstrumentedBuddyMachine.settings = settings(
    max_examples=30, stateful_step_count=40
)


@given(
    orders=st.lists(st.integers(0, MAX_ORDER), min_size=1, max_size=60),
    seed=st.integers(0, 2**16),
)
@settings(max_examples=50)
def test_alloc_all_then_free_all_restores_pristine_state(orders, seed):
    import random

    rng = random.Random(seed)
    buddy = BuddyAllocator(TOTAL, MAX_ORDER)
    live = []
    for order in orders:
        pfn = buddy.try_alloc(order)
        if pfn is not None:
            live.append(pfn)
    rng.shuffle(live)
    for pfn in live:
        buddy.free(pfn)
    assert buddy.free_frames == TOTAL
    assert buddy.free_blocks(MAX_ORDER) == TOTAL >> MAX_ORDER
    buddy.check_invariants()


@given(orders=st.lists(st.integers(0, MAX_ORDER), min_size=1, max_size=40))
@settings(max_examples=50)
def test_allocations_never_overlap(orders):
    buddy = BuddyAllocator(TOTAL, MAX_ORDER)
    taken = set()
    for order in orders:
        pfn = buddy.try_alloc(order)
        if pfn is None:
            continue
        frames = set(range(pfn, pfn + (1 << order)))
        assert not frames & taken
        taken |= frames


@given(st.integers(0, MAX_ORDER))
def test_oom_raises_only_when_truly_full(order):
    buddy = BuddyAllocator(TOTAL, MAX_ORDER)
    count = 0
    try:
        while True:
            buddy.alloc(order)
            count += 1
    except OutOfMemoryError:
        pass
    assert count == TOTAL >> order
    assert not buddy.has_free_block(order)
