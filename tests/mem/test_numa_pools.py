"""Unit tests for the per-node buddy pools behind NumaBuddyPools."""

import pytest

from repro.mem.buddy import BuddyAllocator, OutOfMemoryError
from repro.mem.numa import NumaBuddyPools, NumaTopology
from repro.obs import Observability

TOTAL = 512
MAX_ORDER = 6
NODES = 2


def make_pools(nodes=NODES, total=TOTAL, obs=None, **topo):
    return NumaBuddyPools(
        total, MAX_ORDER, NumaTopology(nodes=nodes, **topo), obs=obs
    )


class TestNumaTopology:
    def test_defaults(self):
        topo = NumaTopology()
        assert topo.nodes == 1
        assert not topo.interleaved
        assert NumaTopology(nodes=4).interleaved

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"nodes": 0},
            {"remote_multiplier": 0.9},
            {"data_dram_fraction": -0.1},
            {"data_dram_fraction": 1.1},
        ],
    )
    def test_rejects_invalid(self, kwargs):
        with pytest.raises(ValueError):
            NumaTopology(**kwargs)


class TestPartition:
    def test_capacity_must_split_into_max_order_blocks(self):
        # 3 nodes * 64-frame blocks don't divide 512 frames.
        with pytest.raises(ValueError, match="split"):
            make_pools(nodes=3)

    def test_node_bounds_partition_pfn_space(self):
        pools = make_pools()
        covered = []
        for node in range(NODES):
            lo, hi = pools.node_bounds(node)
            covered.extend(range(lo, hi))
            for pfn in (lo, hi - 1):
                assert pools.node_of(pfn) == node
        assert covered == list(range(TOTAL))

    def test_node_of_rejects_out_of_bounds(self):
        pools = make_pools()
        with pytest.raises(ValueError, match="bounds"):
            pools.node_of(TOTAL)
        with pytest.raises(ValueError, match="bounds"):
            pools.node_of(-1)

    def test_shared_frame_state_is_one_array(self):
        pools = make_pools()
        pfn = pools.alloc(0, node=1)
        # The facade's global array reflects the node-1 pool's write.
        assert not pools.is_free(pfn)
        assert pools.is_free(0)


class TestPlacement:
    def test_explicit_node_lands_locally(self):
        pools = make_pools()
        for node in range(NODES):
            pfn = pools.alloc(3, node=node)
            assert pools.node_of(pfn) == node

    def test_sticky_preference_steers_allocs(self):
        pools = make_pools()
        pools.set_alloc_preference(1)
        assert pools.node_of(pools.alloc(0)) == 1
        pools.set_alloc_preference(None)

    def test_preference_out_of_range_rejected(self):
        pools = make_pools()
        with pytest.raises(ValueError, match="range"):
            pools.set_alloc_preference(NODES)

    def test_spills_remote_when_home_exhausted(self):
        pools = make_pools()
        per_node_blocks = (TOTAL // NODES) >> MAX_ORDER
        for _ in range(per_node_blocks):
            pools.alloc(MAX_ORDER, node=0)
        assert pools.node_free_frames(0) == 0
        pfn = pools.alloc(0, node=0)  # spill: node 0 is full
        assert pools.node_of(pfn) == 1

    def test_unpreferred_allocs_pick_emptiest_node_deterministically(self):
        pools = make_pools()
        pools.alloc(MAX_ORDER, node=0)
        # node 1 now has strictly more free frames: it wins; ties break low.
        assert pools.node_of(pools.alloc(0)) == 1
        fresh = make_pools()
        assert fresh.node_of(fresh.alloc(0)) == 0

    def test_oom_only_when_every_node_is_full(self):
        pools = make_pools()
        blocks = TOTAL >> MAX_ORDER
        for _ in range(blocks):
            pools.alloc(MAX_ORDER)
        with pytest.raises(OutOfMemoryError, match="any of 2 nodes"):
            pools.alloc(0)
        assert pools.try_alloc(0) is None


class TestDuckType:
    """The facade must satisfy every read the flat allocator serves."""

    def test_totals_aggregate_over_nodes(self):
        pools = make_pools()
        pools.alloc(2, node=0)
        pools.alloc(3, node=1)
        assert pools.used_frames == 4 + 8
        assert pools.free_frames == TOTAL - 12
        # Each alloc broke one max-order block per node.
        assert pools.free_blocks(MAX_ORDER) == (TOTAL >> MAX_ORDER) - 2
        assert pools.free_frames_at_or_above(MAX_ORDER) == TOTAL - 2 * (
            1 << MAX_ORDER
        )
        assert pools.has_free_block(MAX_ORDER)

    def test_free_block_starts_are_global_pfns(self):
        pools = make_pools()
        starts = sorted(pools.free_block_starts(MAX_ORDER))
        assert starts == list(range(0, TOTAL, 1 << MAX_ORDER))

    def test_allocation_routing_and_iteration(self):
        pools = make_pools()
        a = pools.alloc(1, movable=False, node=0)
        b = pools.alloc(2, node=1)
        assert pools.allocation_at(a) == (1, False)
        assert pools.allocation_at(b) == (2, True)
        assert pools.allocation_at(a + 1) is None
        assert sorted(pools.iter_allocations()) == sorted(
            [(a, 1, False), (b, 2, True)]
        )

    def test_alloc_at_and_free_route_by_node(self):
        pools = make_pools()
        remote = pools.node_bounds(1)[0] + 8
        pools.alloc_at(remote, 3)
        assert pools.node_free_frames(1) == TOTAL // NODES - 8
        pools.free(remote)
        assert pools.node_free_frames(1) == TOTAL // NODES
        pools.check_invariants()

    def test_alloc_at_validates_bounds_like_flat(self):
        pools = make_pools()
        with pytest.raises(ValueError, match="order"):
            pools.alloc_at(0, MAX_ORDER + 1)
        with pytest.raises(ValueError, match="bounds"):
            pools.alloc_at(TOTAL - 1, 1)

    def test_listeners_hear_global_pfns(self):
        events = []

        class Listener:
            def on_alloc(self, pfn, order, movable):
                events.append(("alloc", pfn, order))

            def on_free(self, pfn, order, movable):
                events.append(("free", pfn, order))

        pools = make_pools()
        pools.add_listener(Listener())
        pfn = pools.alloc(0, node=1)
        pools.free(pfn)
        assert ("alloc", pfn, 0) in events and ("free", pfn, 0) in events
        assert pfn >= pools.node_bounds(1)[0]  # global, not pool-local


class TestObservability:
    def test_single_node_registry_matches_flat_allocator(self):
        """nodes=1 is the zero-cost wrapper: same metrics, byte for byte."""
        obs_flat, obs_numa = Observability(), Observability()
        flat = BuddyAllocator(TOTAL, MAX_ORDER, obs=obs_flat)
        pools = make_pools(nodes=1, obs=obs_numa)
        for order in (0, 3, MAX_ORDER, 2):
            assert flat.alloc(order) == pools.alloc(order)
        flat.free(0)
        pools.free(0)
        assert obs_flat.metrics.snapshot() == obs_numa.metrics.snapshot()

    def test_local_remote_counters_track_placement(self):
        obs = Observability()
        pools = make_pools(obs=obs)
        per_node_blocks = (TOTAL // NODES) >> MAX_ORDER
        for _ in range(per_node_blocks):
            pools.alloc(MAX_ORDER, node=0)
        pools.alloc(0, node=0)  # spills to node 1
        assert obs.metrics.value("numa_alloc_local_total") == per_node_blocks
        assert obs.metrics.value("numa_alloc_remote_total") == 1

    def test_per_node_gauges_only_exist_multi_node(self):
        obs = Observability()
        pools = make_pools(obs=obs)
        pools.alloc(MAX_ORDER, node=1)
        obs.metrics.collect()
        assert obs.metrics.value("numa_node_free_frames", node=0) == TOTAL // 2
        assert (
            obs.metrics.value("numa_node_free_frames", node=1)
            == TOTAL // 2 - (1 << MAX_ORDER)
        )
        assert obs.metrics.value("buddy_free_frames") == pools.free_frames
        single = Observability()
        make_pools(nodes=1, obs=single).alloc(0)
        single.metrics.collect()
        gauges = single.metrics.snapshot()["gauges"]
        assert not any(name.startswith("numa_") for name in gauges)

    def test_node_fmfi_reflects_per_node_fragmentation(self):
        pools = make_pools()
        # Node 1 pristine -> fully defragmented at the max order.
        assert pools.node_fmfi(1) == 0.0
        # Carve node 0 into base pages and free every other one: its
        # contiguity dies while node 1's index stays at zero.
        lo, hi = pools.node_bounds(0)
        for pfn in range(lo, hi):
            pools.alloc_at(pfn, 0)
        for pfn in range(lo, hi, 2):
            pools.free(pfn)
        assert pools.node_fmfi(0) == 1.0
        assert pools.node_fmfi(1) == 0.0
