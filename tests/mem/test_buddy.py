"""Unit tests for the extended buddy allocator."""

import pytest

from repro.mem.buddy import BuddyAllocator, OutOfMemoryError
from repro.mem.frames import FrameState


def make(total=256, max_order=6, listeners=()):
    return BuddyAllocator(total, max_order, listeners)


class TestConstruction:
    def test_starts_fully_free(self):
        b = make()
        assert b.free_frames == 256
        assert b.used_frames == 0
        assert b.free_blocks(6) == 4

    def test_rejects_non_multiple_total(self):
        with pytest.raises(ValueError):
            BuddyAllocator(100, 6)

    def test_rejects_negative_order(self):
        with pytest.raises(ValueError):
            BuddyAllocator(64, -1)

    def test_rejects_zero_frames(self):
        with pytest.raises(ValueError):
            BuddyAllocator(0, 0)


class TestAlloc:
    def test_alloc_order0_lowest_address_first(self):
        b = make()
        assert b.alloc(0) == 0
        assert b.alloc(0) == 1

    def test_alloc_splits_larger_block(self):
        b = make(total=64, max_order=6)
        pfn = b.alloc(2)
        assert pfn == 0
        # Splitting one order-6 block into one order-2 alloc leaves free
        # buddies at orders 2..5.
        assert b.free_frames == 60
        for order in range(2, 6):
            assert b.free_blocks(order) == 1

    def test_alloc_is_aligned(self):
        b = make()
        for order in (0, 1, 3, 5):
            pfn = b.alloc(order)
            assert pfn % (1 << order) == 0

    def test_alloc_exhausts_then_raises(self):
        b = make(total=8, max_order=3)
        b.alloc(3)
        with pytest.raises(OutOfMemoryError):
            b.alloc(0)

    def test_try_alloc_returns_none_on_oom(self):
        b = make(total=8, max_order=3)
        b.alloc(3)
        assert b.try_alloc(0) is None

    def test_alloc_bad_order_rejected(self):
        b = make(total=8, max_order=3)
        with pytest.raises(ValueError):
            b.alloc(4)
        with pytest.raises(ValueError):
            b.alloc(-1)

    def test_alloc_marks_frame_state(self):
        b = make()
        pfn = b.alloc(2, movable=True)
        assert (b.frame_state[pfn : pfn + 4] == FrameState.MOVABLE).all()
        pfn2 = b.alloc(1, movable=False)
        assert (b.frame_state[pfn2 : pfn2 + 2] == FrameState.UNMOVABLE).all()

    def test_no_free_block_at_order_after_fill(self):
        b = make(total=16, max_order=4)
        b.alloc(0)
        assert not b.has_free_block(4)
        assert b.has_free_block(3)


class TestFree:
    def test_free_restores_counts(self):
        b = make()
        pfn = b.alloc(3)
        b.free(pfn)
        assert b.free_frames == 256

    def test_free_coalesces_to_max_order(self):
        b = make(total=64, max_order=6)
        pfns = [b.alloc(0) for _ in range(64)]
        for pfn in pfns:
            b.free(pfn)
        assert b.free_blocks(6) == 1
        assert b.free_frames == 64

    def test_free_unknown_pfn_rejected(self):
        b = make()
        with pytest.raises(ValueError):
            b.free(5)

    def test_double_free_rejected(self):
        b = make()
        pfn = b.alloc(0)
        b.free(pfn)
        with pytest.raises(ValueError):
            b.free(pfn)

    def test_partial_coalesce_stops_at_allocated_buddy(self):
        b = make(total=16, max_order=4)
        a0 = b.alloc(0)  # pfn 0
        a1 = b.alloc(0)  # pfn 1
        b.free(a0)
        # Buddy (pfn 1) still allocated: block stays at order 0.
        assert b.free_blocks(0) == 1
        b.free(a1)
        assert b.free_blocks(4) == 1


class TestAllocAt:
    def test_alloc_at_specific_frame(self):
        b = make(total=64, max_order=6)
        b.alloc_at(17, 0)
        assert b.allocation_at(17) == (0, True)
        assert b.free_frames == 63

    def test_alloc_at_splits_correctly(self):
        b = make(total=64, max_order=6)
        b.alloc_at(32, 3, movable=False)
        assert b.allocation_at(32) == (3, False)
        b.check_invariants()

    def test_alloc_at_occupied_rejected(self):
        b = make(total=64, max_order=6)
        b.alloc_at(4, 2)
        with pytest.raises(ValueError):
            b.alloc_at(4, 0)
        with pytest.raises(ValueError):
            b.alloc_at(5, 0)

    def test_alloc_at_misaligned_rejected(self):
        b = make(total=64, max_order=6)
        with pytest.raises(ValueError):
            b.alloc_at(3, 2)

    def test_alloc_at_out_of_bounds_rejected(self):
        b = make(total=64, max_order=6)
        with pytest.raises(ValueError):
            b.alloc_at(64, 0)

    def test_alloc_at_then_free_roundtrip(self):
        b = make(total=64, max_order=6)
        b.alloc_at(40, 2)
        b.free(40)
        assert b.free_frames == 64
        assert b.free_blocks(6) == 1
        b.check_invariants()

    def test_is_free(self):
        b = make(total=16, max_order=4)
        assert b.is_free(7)
        b.alloc_at(7, 0)
        assert not b.is_free(7)


class TestQueries:
    def test_free_frames_at_or_above(self):
        b = make(total=16, max_order=4)
        b.alloc(0)  # splits the single order-4 block
        # Free buddies at orders 0..3: 1 + 2 + 4 + 8 = 15 frames.
        assert b.free_frames_at_or_above(0) == 15
        assert b.free_frames_at_or_above(3) == 8
        assert b.free_frames_at_or_above(4) == 0

    def test_iter_allocations(self):
        b = make(total=16, max_order=4)
        a = b.alloc(1, movable=False)
        allocs = list(b.iter_allocations())
        assert allocs == [(a, 1, False)]


class TestListeners:
    def test_listener_sees_alloc_and_free(self):
        events = []

        class Spy:
            def on_alloc(self, pfn, order, movable):
                events.append(("alloc", pfn, order, movable))

            def on_free(self, pfn, order, movable):
                events.append(("free", pfn, order, movable))

        b = make(total=16, max_order=4, listeners=(Spy(),))
        pfn = b.alloc(1, movable=False)
        b.free(pfn)
        assert events == [("alloc", pfn, 1, False), ("free", pfn, 1, False)]


class TestInvariants:
    def test_invariants_after_mixed_workload(self):
        b = make(total=128, max_order=7)
        live = []
        import random

        rng = random.Random(42)
        for step in range(500):
            if live and rng.random() < 0.45:
                b.free(live.pop(rng.randrange(len(live))))
            else:
                pfn = b.try_alloc(rng.randrange(4), movable=rng.random() < 0.9)
                if pfn is not None:
                    live.append(pfn)
        b.check_invariants()
        for pfn in live:
            b.free(pfn)
        b.check_invariants()
        assert b.free_frames == 128
