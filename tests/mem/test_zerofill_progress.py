"""Zero-fill budget carry-over and fault-credit behaviour."""

from repro.config import CostModel, PageGeometry
from repro.mem.buddy import BuddyAllocator
from repro.mem.zerofill import ZeroFillEngine

BASE, MID, LARGE = 0, 1, 2  # three-tier level indices (x86-shaped test geometry)

GEOM = PageGeometry(base_shift=12, mid_order=2, large_order=4)


def make(n_regions=4, pool=2):
    buddy = BuddyAllocator(n_regions * GEOM.frames_per_large, GEOM.large_order)
    return buddy, ZeroFillEngine(buddy, GEOM, CostModel(), pool)


class TestProgressCarryOver:
    def test_small_budgets_accumulate_into_a_block(self):
        _, engine = make()
        block_cost = CostModel().zero_ns(GEOM.large_size)
        slice_ns = block_cost / 10
        for _ in range(9):
            engine.background_fill(slice_ns)
        assert engine.pool_size == 0  # nine tenths: not there yet
        engine.background_fill(slice_ns * 1.5)
        assert engine.pool_size == 1

    def test_budget_returned_when_pool_full(self):
        _, engine = make(pool=1)
        engine.background_fill(1e12)
        assert engine.pool_size == 1
        spent = engine.background_fill(1e9)
        assert spent == 0.0

    def test_credit_dropped_when_no_free_block(self):
        buddy, engine = make(n_regions=1, pool=1)
        buddy.alloc(GEOM.large_order)  # nothing left to zero
        spent = engine.background_fill(1e12)
        assert engine.pool_size == 0
        # No free block: the credit is surrendered, not banked forever.
        assert engine._progress_ns == 0.0
        assert spent <= 1e12

    def test_blocks_zeroed_counter(self):
        _, engine = make()
        engine.background_fill(1e12)
        assert engine.blocks_zeroed == 2

    def test_release_all_drops_accrued_credit(self):
        """Regression: release_all must zero the zeroing credit.

        Previously it returned the pooled blocks but kept ``_progress_ns``,
        so the very next daemon tick could instantly re-allocate the large
        blocks the memory-pressure path had just reclaimed.
        """
        buddy, engine = make(n_regions=4, pool=2)
        block_cost = CostModel().zero_ns(GEOM.large_size)
        engine.background_fill(block_cost * 1.9)  # 1 block + 0.9 credit
        assert engine.pool_size == 1
        assert engine._progress_ns > 0.0
        free_before = buddy.free_frames
        released = engine.release_all()
        assert released == 1
        assert engine.pool_size == 0
        assert engine._progress_ns == 0.0
        assert buddy.free_frames == free_before + GEOM.frames_per_large
        # With zero credit banked, a sub-block budget cannot produce a
        # block on the next tick — the daemon starts from scratch.
        engine.background_fill(block_cost * 0.5)
        assert engine.pool_size == 0

    def test_release_all_counts_released_blocks(self):
        _, engine = make(pool=2)
        engine.background_fill(1e12)
        assert engine.pool_size == 2
        engine.release_all()
        engine.background_fill(1e12)
        engine.release_all()
        assert engine.blocks_released == 4


class TestStatsHelpers:
    def test_policy_stats_mapped_pages(self):
        from repro.core.policy import PolicyStats

        stats = PolicyStats()
        stats.fault_mapped[MID] = 5
        stats.promoted[MID] = 3
        stats.demoted[MID] = 2
        assert stats.mapped_pages(MID) == 6

    def test_compaction_result_merge(self):
        from repro.core.compaction import CompactionResult

        a = CompactionResult(success=False, bytes_copied=10, time_ns=5.0)
        b = CompactionResult(
            success=True, bytes_copied=20, bytes_exchanged=7, regions_freed=1
        )
        a.merge(b)
        assert a.success
        assert a.bytes_copied == 30
        assert a.bytes_exchanged == 7
        assert a.regions_freed == 1
        assert a.time_ns == 5.0
