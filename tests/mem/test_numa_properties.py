"""Property-based tests (hypothesis) for the per-node NUMA buddy pools.

Two halves, mirroring ``test_buddy_properties.py`` one layer up:

* churn properties — random alloc/free/migrate sequences over a 2-node
  facade preserve every per-node free-list invariant plus total-capacity
  conservation (no frame is ever lost to or conjured from the node
  boundary);
* corruption injection — each way the cross-node accounting could drift
  (free-list tamper, stolen blocks, counter skew, residency skew, replica
  skew) must be *rejected* by the ``--audit`` checker, proving the
  invariant blanket actually has teeth.
"""

import random

import hypothesis.strategies as st
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro.config import default_machine
from repro.core import TridentPolicy
from repro.lint.invariants import (
    InvariantViolation,
    attach_auditor,
    audit_system,
    check_node_residency,
    check_numa_pools,
    check_replica_accounting,
)
from repro.mem.numa import NumaBuddyPools, NumaTopology
from repro.sim.system import System

TOTAL = 256
MAX_ORDER = 5
NODES = 2


def make_pools(nodes=NODES):
    return NumaBuddyPools(TOTAL, MAX_ORDER, NumaTopology(nodes=nodes))


class NumaPoolsMachine(RuleBasedStateMachine):
    """Random alloc/free/migrate churn preserves per-node invariants."""

    def __init__(self):
        super().__init__()
        self.pools = make_pools()
        self.live: list[tuple[int, int]] = []  # (pfn, order)

    @rule(
        order=st.integers(0, MAX_ORDER),
        node=st.one_of(st.none(), st.integers(0, NODES - 1)),
        movable=st.booleans(),
    )
    def alloc(self, order, node, movable):
        pfn = self.pools.try_alloc(order, movable, node=node)
        if pfn is not None:
            assert pfn % (1 << order) == 0
            self.live.append((pfn, order))

    @precondition(lambda self: self.live)
    @rule(data=st.data())
    def free(self, data):
        idx = data.draw(st.integers(0, len(self.live) - 1))
        pfn, _ = self.live.pop(idx)
        self.pools.free(pfn)

    @rule(pfn=st.integers(0, TOTAL - 1), order=st.integers(0, 3))
    def alloc_at(self, pfn, order):
        pfn &= ~((1 << order) - 1)
        try:
            self.pools.alloc_at(pfn, order)
            self.live.append((pfn, order))
        except ValueError:
            pass  # occupied or out of bounds: rejection is the contract

    @precondition(lambda self: self.live)
    @rule(data=st.data(), dest=st.integers(0, NODES - 1))
    def migrate(self, data, dest):
        """Move a live block to ``dest``: alloc there first, then free
        the original — the order compaction uses, so both copies coexist
        across a node boundary mid-migration."""
        idx = data.draw(st.integers(0, len(self.live) - 1))
        pfn, order = self.live[idx]
        new_pfn = self.pools.try_alloc(order, node=dest)
        if new_pfn is None:
            return
        self.live[idx] = (new_pfn, order)
        self.pools.free(pfn)

    @invariant()
    def capacity_conserved(self):
        live_frames = sum(1 << order for _, order in self.live)
        per_node_free = [
            self.pools.node_free_frames(n) for n in range(NODES)
        ]
        assert sum(per_node_free) == self.pools.free_frames
        assert self.pools.free_frames == TOTAL - live_frames
        assert all(0 <= f <= TOTAL // NODES for f in per_node_free)

    @invariant()
    def blocks_stay_on_their_node(self):
        for pfn, order in self.live:
            assert self.pools.node_of(pfn) == self.pools.node_of(
                pfn + (1 << order) - 1
            ), "allocation straddles a node boundary"

    @invariant()
    def full_check(self):
        self.pools.check_invariants()


TestNumaPoolsMachine = NumaPoolsMachine.TestCase
TestNumaPoolsMachine.settings = settings(
    max_examples=30, stateful_step_count=40
)


@given(seed=st.integers(0, 2**32 - 1))
@settings(max_examples=200, deadline=None)
def test_200_seed_churn_preserves_invariants(seed):
    """The ISSUE's 200-seed blanket: a seeded random churn script of
    allocs, frees and cross-node migrations always lands in a state the
    full audit accepts, and freeing everything restores pristine pools."""
    rng = random.Random(seed)
    pools = make_pools()
    live: list[tuple[int, int]] = []
    for _ in range(rng.randrange(20, 60)):
        op = rng.random()
        if op < 0.5 or not live:
            order = rng.randrange(0, MAX_ORDER + 1)
            node = rng.choice([None, 0, 1])
            pfn = pools.try_alloc(order, node=node)
            if pfn is not None:
                live.append((pfn, order))
        elif op < 0.8:
            pfn, _ = live.pop(rng.randrange(len(live)))
            pools.free(pfn)
        else:  # migrate to the other node
            idx = rng.randrange(len(live))
            pfn, order = live[idx]
            target = 1 - pools.node_of(pfn)
            new_pfn = pools.try_alloc(order, node=target)
            if new_pfn is not None:
                live[idx] = (new_pfn, order)
                pools.free(pfn)
    check_numa_pools(pools)
    assert pools.free_frames == TOTAL - sum(1 << o for _, o in live)
    for pfn, _ in live:
        pools.free(pfn)
    assert pools.free_frames == TOTAL
    assert all(
        pools.node_free_frames(n) == TOTAL // NODES for n in range(NODES)
    )
    pools.check_invariants()


class TestCorruptionInjection:
    """Every drift mode the audit layer claims to catch, it must catch."""

    def test_clean_pools_pass(self):
        pools = make_pools()
        pools.alloc(2, node=0)
        assert check_numa_pools(pools) > 0

    def test_free_list_tamper_rejected(self):
        pools = make_pools()
        pfn = pools.alloc(0, node=0)
        # Resurrect the allocated frame on its own node's free list.
        pools.pools[0]._free_lists[0].add(pfn)
        with pytest.raises(InvariantViolation):
            check_numa_pools(pools)

    def test_cross_node_stolen_block_rejected(self):
        pools = make_pools()
        # Node 1 "steals" a block node 0 still accounts for: the same
        # local pfn appears free on both sides of the boundary.
        start = pools.pools[0]._free_lists[MAX_ORDER].pop_lowest()
        pools.pools[1]._free_lists[MAX_ORDER].add(start)
        with pytest.raises(InvariantViolation):
            check_numa_pools(pools)

    def test_free_frame_counter_skew_rejected(self):
        pools = make_pools()
        pools.pools[1]._free_frames -= 1
        with pytest.raises(InvariantViolation, match="free-frame"):
            check_numa_pools(pools)

    def test_pool_base_drift_rejected(self):
        pools = make_pools()
        pools.pools[1].pfn_base += 1 << MAX_ORDER
        with pytest.raises(InvariantViolation, match="covers"):
            check_numa_pools(pools)


def _numa_system(pt_replication=False):
    system = System(
        default_machine(8),
        TridentPolicy,
        seed=11,
        numa=NumaTopology(nodes=2),
        pt_replication=pt_replication,
    )
    process = system.create_process(home_node=1)
    base = system.sys_mmap(process, 1 << 22)
    rng = np.random.default_rng(3)
    offsets = rng.integers(0, (1 << 22) // 8, size=4000) * 8
    system.touch_batch(process, base + offsets.astype(np.int64))
    return system, process


class TestSystemDriftInjection:
    """audit_system ties the NUMA checks into the machine-level audit."""

    def test_clean_numa_system_passes(self):
        system, process = _numa_system()
        assert audit_system(system) > 0
        assert check_node_residency(
            process.pagetable, system.buddy.node_of, 2
        ) > 0

    def test_residency_counter_drift_rejected(self):
        system, process = _numa_system()
        process.pagetable._node_frames[0] += 1
        with pytest.raises(InvariantViolation, match="drift"):
            audit_system(system)

    def test_residency_total_drift_rejected(self):
        system, process = _numa_system()
        # Skew both nodes so the per-node split still sums consistently
        # wrong: only the total check can see it.
        process.pagetable._resident_frames += 2
        with pytest.raises(InvariantViolation, match="total residency"):
            check_node_residency(
                process.pagetable, system.buddy.node_of, 2
            )

    def test_replica_overcount_rejected(self):
        system, _ = _numa_system(pt_replication=True)
        assert check_replica_accounting(system) == 1
        system.replica_updates += 1
        with pytest.raises(InvariantViolation, match="replica"):
            audit_system(system)

    def test_replication_off_requires_zero_updates(self):
        system, _ = _numa_system(pt_replication=False)
        system.replica_updates = 1
        with pytest.raises(InvariantViolation, match="replica"):
            check_replica_accounting(system)

    def test_attached_auditor_counts_the_violation(self):
        system, process = _numa_system()
        auditor = attach_auditor(system)
        assert auditor.audit() > 0
        process.pagetable._node_frames[0] += 4
        with pytest.raises(InvariantViolation):
            auditor.audit()
        assert auditor.violations == 1
