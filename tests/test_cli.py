"""CLI tests."""

import json
import os

import pytest

from repro.cli import main


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "GUPS" in out and "Trident" in out and "figure9" in out

    def test_run_native(self, capsys):
        code = main(["run", "GUPS", "Trident", "--accesses", "2000"])
        assert code == 0
        out = capsys.readouterr().out
        assert "walk fraction" in out
        assert "1GB  mapped" in out

    def test_run_with_baseline(self, capsys):
        code = main(
            ["run", "GUPS", "Trident", "--accesses", "2000", "--baseline", "4KB"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "speedup" in out

    def test_unknown_experiment(self, capsys):
        assert main(["experiment", "nope"]) == 2

    def test_experiment_latency_micro(self, capsys):
        assert main(["experiment", "latency_micro"]) == 0
        out = capsys.readouterr().out
        assert "1GB promotion, pv batched" in out

    def test_unknown_workload_raises(self):
        with pytest.raises(KeyError):
            main(["run", "nope", "Trident"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestSweepCLI:
    def test_sweep_writes_manifest_and_csvs(self, capsys, tmp_path):
        out = str(tmp_path / "sweep")
        code = main(
            ["sweep", "latency_micro", "--jobs", "2", "--out", out]
        )
        assert code == 0
        stdout = capsys.readouterr().out
        assert "Sweep units" in stdout
        assert "latency_micro" in stdout
        assert os.path.exists(os.path.join(out, "latency_micro.csv"))
        with open(os.path.join(out, "sweep_manifest.json")) as f:
            manifest = json.load(f)
        assert manifest["counts"] == {"ok": 1}
        assert manifest["units"][0]["unit_id"] == "latency_micro"
        assert manifest["units"][0]["duration_s"] > 0

    def test_sweep_resume_reuses_completed_units(self, capsys, tmp_path):
        out = str(tmp_path / "sweep")
        assert main(["sweep", "latency_micro", "--out", out]) == 0
        capsys.readouterr()
        manifest_path = os.path.join(out, "sweep_manifest.json")
        code = main(
            ["sweep", "latency_micro", "--out", out, "--resume", manifest_path]
        )
        assert code == 0
        assert "cached" in capsys.readouterr().out

    def test_sweep_rejects_unknown_module(self, tmp_path):
        with pytest.raises(KeyError):
            main(["sweep", "nope", "--out", str(tmp_path)])


class TestLintCLI:
    def test_clean_tree_exits_zero(self, capsys):
        assert main(["lint"]) == 0  # default path: src
        assert capsys.readouterr().out == ""

    def test_findings_exit_one_text_and_json(self, capsys, tmp_path):
        bad = tmp_path / "repro" / "mod.py"
        bad.parent.mkdir()
        bad.write_text("import random\n")
        assert main(["lint", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "TRD001" in out and "1 finding(s)" in out
        assert main(["lint", str(tmp_path), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["findings"][0]["rule"] == "TRD001"
        assert payload["findings"][0]["line"] == 1
        assert payload["files"] == 1
        assert "TRD001" in payload["rule_timings_ms"]

    def test_select_filters_rules(self, capsys, tmp_path):
        bad = tmp_path / "repro" / "mod.py"
        bad.parent.mkdir()
        bad.write_text("import random\n")
        assert main(["lint", str(tmp_path), "--select", "TRD003"]) == 0
        capsys.readouterr()
        assert main(["lint", str(tmp_path), "--select", "TRD001"]) == 1

    def test_unknown_rule_code_exits_two(self, capsys):
        assert main(["lint", "--select", "TRD999"]) == 2
        out = capsys.readouterr().out
        assert "unknown rule code" in out
        # the one-line error names every valid code
        assert "TRD001" in out and "TRD008" in out

    def test_missing_path_exits_two(self, capsys):
        assert main(["lint", "/no/such/path"]) == 2
        assert "error:" in capsys.readouterr().out

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("TRD001", "TRD002", "TRD003", "TRD004"):
            assert code in out

    def test_explain_renders_rationale_and_examples(self, capsys):
        assert main(["lint", "--explain", "trd006"]) == 0
        out = capsys.readouterr().out
        assert "TRD006 clock-discipline" in out
        assert "bad:" in out and "good:" in out
        assert "clock.advance" in out

    def test_explain_unknown_code_exits_two(self, capsys):
        assert main(["lint", "--explain", "TRD999"]) == 2
        out = capsys.readouterr().out
        assert "unknown rule code" in out and "TRD008" in out

    def test_baseline_round_trip(self, capsys, tmp_path):
        bad = tmp_path / "repro" / "mod.py"
        bad.parent.mkdir()
        bad.write_text("import random\n")
        baseline = str(tmp_path / "baseline.json")
        assert main(["lint", str(bad), "--write-baseline", baseline]) == 0
        assert "wrote baseline with 1 entry" in capsys.readouterr().out
        # the baselined finding no longer fails the run
        assert main(["lint", str(bad), "--baseline", baseline]) == 0
        assert "1 baselined finding(s) suppressed" in capsys.readouterr().out

    def test_baseline_reports_stale_entries(self, capsys, tmp_path):
        bad = tmp_path / "repro" / "mod.py"
        bad.parent.mkdir()
        bad.write_text("import random\n")
        baseline = str(tmp_path / "baseline.json")
        assert main(["lint", str(bad), "--write-baseline", baseline]) == 0
        capsys.readouterr()
        bad.write_text("x = 1\n")  # debt paid off
        assert main(["lint", str(bad), "--baseline", baseline]) == 0
        assert "stale baseline entry TRD001" in capsys.readouterr().out

    def test_unreadable_baseline_exits_two(self, capsys, tmp_path):
        bad_baseline = tmp_path / "baseline.json"
        bad_baseline.write_text("[]\n")
        assert main(["lint", "--baseline", str(bad_baseline)]) == 2
        assert "cannot read baseline" in capsys.readouterr().out

    def test_format_sarif(self, capsys, tmp_path):
        bad = tmp_path / "repro" / "mod.py"
        bad.parent.mkdir()
        bad.write_text("import random\n")
        assert main(["lint", str(bad), "--format", "sarif"]) == 1
        log = json.loads(capsys.readouterr().out)
        assert log["version"] == "2.1.0"
        (result,) = log["runs"][0]["results"]
        assert result["ruleId"] == "TRD001"
        uri = result["locations"][0]["physicalLocation"]["artifactLocation"]
        assert uri["uri"] == "repro/mod.py"


class TestAuditCLI:
    def test_run_with_audit(self, capsys, tmp_path):
        out = str(tmp_path / "m.json")
        code = main(
            ["run", "GUPS", "Trident", "--accesses", "1500",
             "--audit", "--audit-every", "256", "--metrics-out", out]
        )
        assert code == 0
        section = json.load(open(out))["run"]
        assert section["audit_runs"] >= 1
        assert section["audit_checks"] > 0
        assert section["audit_violations"] == 0

    def test_experiment_audit_resets_global(self, capsys):
        import repro.experiments.runner as runner_mod

        assert main(["experiment", "latency_micro", "--quick", "--audit"]) == 0
        assert runner_mod.AUDIT is False  # try/finally reset


class TestTimelineCLI:
    def test_run_with_timeline_outputs(self, capsys, tmp_path):
        trace = str(tmp_path / "trace.json")
        report = str(tmp_path / "report.html")
        metrics = str(tmp_path / "m.json")
        code = main(
            ["run", "GUPS", "Trident", "--accesses", "1500",
             "--timeline-out", trace, "--report-out", report,
             "--metrics-out", metrics]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "timeline written" in out and "report written" in out
        loaded = json.load(open(trace))
        assert loaded["traceEvents"]
        assert "</html>" in open(report).read()
        # --timeline-out implies timeline recording
        assert json.load(open(metrics))["timeline"]["spans"]["spans_closed"] > 0

    def test_experiment_timeline_resets_global(self, capsys):
        import repro.experiments.runner as runner_mod

        code = main(
            ["experiment", "latency_micro", "--quick", "--timeline"]
        )
        assert code == 0
        assert runner_mod.TIMELINE is False  # try/finally reset

    def test_report_from_metrics_json(self, capsys, tmp_path):
        metrics = str(tmp_path / "m.json")
        assert main(
            ["run", "GUPS", "Trident", "--accesses", "1500",
             "--timeline", "--metrics-out", metrics]
        ) == 0
        capsys.readouterr()
        out = str(tmp_path / "r.html")
        assert main(["report", metrics, "-o", out]) == 0
        assert "report written" in capsys.readouterr().out
        assert "m.json" in open(out).read()

    def test_report_rejects_timeline_less_input(self, capsys, tmp_path):
        path = tmp_path / "plain.json"
        path.write_text('{"counters": {}}')
        assert main(["report", str(path)]) == 2
        assert "no timeline section" in capsys.readouterr().out

    def test_report_rejects_missing_file(self, capsys, tmp_path):
        assert main(["report", str(tmp_path / "nope.json")]) == 2
        assert "error:" in capsys.readouterr().out

    def test_metrics_file_renders_percentiles(self, capsys, tmp_path):
        metrics = str(tmp_path / "m.json")
        assert main(
            ["run", "GUPS", "Trident", "--accesses", "1500",
             "--timeline", "--metrics-out", metrics]
        ) == 0
        capsys.readouterr()
        assert main(["metrics", metrics]) == 0
        out = capsys.readouterr().out
        assert "P50" in out and "P99" in out
        assert "buckets" not in out  # percentiles, not raw bucket dumps
        assert "span_duration_ns{kind=fault}" in out

    def test_metrics_file_kind_filter(self, capsys, tmp_path):
        metrics = str(tmp_path / "m.json")
        assert main(
            ["run", "GUPS", "Trident", "--accesses", "1500",
             "--metrics-out", metrics]
        ) == 0
        capsys.readouterr()
        assert main(["metrics", metrics, "--kind", "counter"]) == 0
        out = capsys.readouterr().out
        assert "Counters:" in out and "Histograms:" not in out

    def test_metrics_without_file_lists_catalogue(self, capsys):
        assert main(["metrics"]) == 0
        out = capsys.readouterr().out
        assert "span_duration_ns" in out
        assert "timeline_samples_total" in out
        assert "sim_clock_ns" in out


class TestBrokenMetricsInputs:
    """``repro metrics FILE`` and ``repro report`` on missing/corrupt
    inputs: one clean error line and a nonzero exit, never a traceback."""

    def _assert_clean_error(self, capsys, code):
        assert code == 2
        out = capsys.readouterr().out
        assert out.startswith("error:")
        assert len(out.strip().splitlines()) == 1
        assert "Traceback" not in out

    def test_metrics_missing_file(self, capsys, tmp_path):
        code = main(["metrics", str(tmp_path / "nope.json")])
        self._assert_clean_error(capsys, code)

    def test_metrics_corrupt_json(self, capsys, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        self._assert_clean_error(capsys, main(["metrics", str(path)]))

    def test_metrics_non_object_top_level(self, capsys, tmp_path):
        path = tmp_path / "list.json"
        path.write_text("[1, 2, 3]")
        self._assert_clean_error(capsys, main(["metrics", str(path)]))

    def test_metrics_malformed_histogram_entry(self, capsys, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text(json.dumps({"histograms": {"h": {"count": 3}}}))
        self._assert_clean_error(capsys, main(["metrics", str(path)]))

    def test_metrics_histogram_not_a_dict(self, capsys, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text(json.dumps({"histograms": {"h": [1, 2]}}))
        self._assert_clean_error(capsys, main(["metrics", str(path)]))

    def test_report_corrupt_json(self, capsys, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{truncated")
        self._assert_clean_error(capsys, main(["report", str(path)]))

    def test_report_non_object_top_level(self, capsys, tmp_path):
        path = tmp_path / "list.json"
        path.write_text("[]")
        self._assert_clean_error(capsys, main(["report", str(path)]))

    def test_report_malformed_units(self, capsys, tmp_path):
        path = tmp_path / "manifest.json"
        path.write_text(json.dumps({"units": 17}))
        self._assert_clean_error(capsys, main(["report", str(path)]))


SERVICE_QUICK = [
    "--duration", "0.002", "--scale-factor", "2048", "--seed", "17",
]


class TestServiceCLI:
    def test_loadgen_writes_report_and_csv(self, capsys, tmp_path):
        out = str(tmp_path / "svc")
        code = main(
            ["loadgen", "--workloads", "GUPS", "--policies", "Trident,4KB",
             "--rate", "20000", "-o", out, *SERVICE_QUICK]
        )
        assert code == 0
        stdout = capsys.readouterr().out
        assert "Service report" in stdout and "Trident" in stdout
        report = json.load(open(os.path.join(out, "service_report.json")))
        assert report["kind"] == "service_report"
        assert {g["policy"] for g in report["groups"]} == {"Trident", "4KB"}
        assert os.path.exists(os.path.join(out, "saturation.csv"))

    def test_loadgen_closed_loop_flag(self, capsys, tmp_path):
        out = str(tmp_path / "svc")
        code = main(
            ["loadgen", "--workloads", "GUPS", "--policies", "Trident",
             "--rate", "20000", "--closed-loop", "-o", out, *SERVICE_QUICK]
        )
        assert code == 0
        report = json.load(open(os.path.join(out, "service_report.json")))
        assert report["mode"] == "closed"

    def test_loadgen_bad_rate_exits_two(self, capsys, tmp_path):
        code = main(["loadgen", "--rate", "fast", "-o", str(tmp_path)])
        assert code == 2
        assert "error:" in capsys.readouterr().out

    def test_loadgen_failed_cell_exits_three(self, capsys, tmp_path):
        code = main(
            ["loadgen", "--workloads", "GUPS", "--policies", "bogus",
             "--rate", "1000", "-o", str(tmp_path / "svc"), *SERVICE_QUICK]
        )
        assert code == 3
        assert "bogus" in capsys.readouterr().err

    def test_serve_config_roundtrip(self, capsys, tmp_path):
        config = tmp_path / "fleet.json"
        config.write_text(json.dumps({
            "tenants": [
                {"workload": "GUPS", "policy": "Trident", "rate_rps": 20000},
                {"workload": "GUPS", "policy": "4KB", "rate_rps": 20000},
            ],
            "duration_s": 0.002,
            "scale_factor": 2048,
            "slo_ms": 0.5,
        }))
        out = str(tmp_path / "svc")
        assert main(["serve", "--config", str(config), "-o", out]) == 0
        report = json.load(open(os.path.join(out, "service_report.json")))
        assert report["slo_ms"] == 0.5
        assert len(report["groups"]) == 2

    def test_serve_missing_config_exits_two(self, capsys, tmp_path):
        code = main(["serve", "--config", str(tmp_path / "nope.json")])
        assert code == 2
        assert "error:" in capsys.readouterr().out

    def test_serve_rejects_bad_spec(self, capsys, tmp_path):
        config = tmp_path / "fleet.json"
        config.write_text(json.dumps({"tenants": [{"workload": "GUPS"}]}))
        code = main(["serve", "--config", str(config)])
        assert code == 2
        assert "fleet spec" in capsys.readouterr().out

    def test_serve_rejects_non_object(self, capsys, tmp_path):
        config = tmp_path / "fleet.json"
        config.write_text("[]")
        code = main(["serve", "--config", str(config)])
        assert code == 2
        assert "tenants" in capsys.readouterr().out


class TestTelemetryCLI:
    def test_loadgen_telemetry_and_alerts(self, capsys, tmp_path):
        from repro.obs.telemetry.exposition import (
            iter_frames,
            validate_exposition,
        )

        out = str(tmp_path / "svc")
        rules = tmp_path / "rules.json"
        rules.write_text(json.dumps({"rules": [{
            "name": "always", "kind": "threshold",
            "metric": "service_queue_depth", "op": ">=", "value": 0.0,
        }]}))
        code = main(
            ["loadgen", "--workloads", "GUPS", "--policies", "Trident",
             "--rate", "20000", "-o", out, *SERVICE_QUICK,
             "--telemetry-out", os.path.join(out, "telemetry"),
             "--telemetry-interval-ms", "0.5",
             "--alerts", str(rules)]
        )
        assert code == 0
        stdout = capsys.readouterr().out
        assert "telemetry:" in stdout and "alerts:" in stdout
        streams = [
            f for f in os.listdir(os.path.join(out, "telemetry"))
            if f.endswith(".prom")
        ]
        assert len(streams) == 1
        with open(os.path.join(out, "telemetry", streams[0])) as f:
            frames = list(iter_frames(f.read()))
        assert frames
        for _, _, frame in frames:
            validate_exposition(frame)
        assert os.path.exists(os.path.join(out, "alerts.json"))

    def test_loadgen_alerts_without_telemetry_exits_two(self, capsys, tmp_path):
        code = main(
            ["loadgen", "--workloads", "GUPS", "--policies", "Trident",
             "--rate", "20000", "-o", str(tmp_path / "svc"), *SERVICE_QUICK,
             "--alerts", str(tmp_path / "rules.json")]
        )
        assert code == 2
        assert "requires --telemetry-out" in capsys.readouterr().out

    def test_metrics_format_prom_round_trips(self, capsys, tmp_path):
        from repro.obs.telemetry.exposition import (
            parse_exposition,
            validate_exposition,
        )

        metrics = str(tmp_path / "m.json")
        assert main(
            ["run", "GUPS", "Trident", "--accesses", "1500",
             "--metrics-out", metrics]
        ) == 0
        capsys.readouterr()
        assert main(["metrics", metrics, "--format", "prom"]) == 0
        text = capsys.readouterr().out
        assert "# TYPE" in text
        validate_exposition(text)
        parsed = parse_exposition(text)
        snapshot = json.load(open(metrics))
        assert parsed["counters"] == snapshot["counters"]

    def test_metrics_format_prom_kind_filter(self, capsys, tmp_path):
        metrics = str(tmp_path / "m.json")
        assert main(
            ["run", "GUPS", "Trident", "--accesses", "1500",
             "--metrics-out", metrics]
        ) == 0
        capsys.readouterr()
        assert main(
            ["metrics", metrics, "--format", "prom", "--kind", "counter"]
        ) == 0
        text = capsys.readouterr().out
        assert "# TYPE" in text
        assert "counter" in text and "histogram" not in text

    def test_metrics_format_prom_without_file_exits_two(self, capsys):
        assert main(["metrics", "--format", "prom"]) == 2
        assert "error:" in capsys.readouterr().out

    def test_metrics_format_prom_corrupt_json_clean_error(self, capsys, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        code = main(["metrics", str(path), "--format", "prom"])
        assert code == 2
        out = capsys.readouterr().out
        assert out.startswith("error:") and "Traceback" not in out

    def test_watch_once_renders_dashboard(self, capsys, tmp_path):
        out = str(tmp_path / "svc")
        assert main(
            ["loadgen", "--workloads", "GUPS", "--policies", "Trident",
             "--rate", "20000", "-o", out, *SERVICE_QUICK,
             "--telemetry-out", os.path.join(out, "telemetry")]
        ) == 0
        capsys.readouterr()
        assert main(
            ["watch", os.path.join(out, "telemetry"), "--once"]
        ) == 0
        stdout = capsys.readouterr().out
        assert "fleet telemetry" in stdout
        assert "GUPS/Trident" in stdout

    def test_watch_empty_dir_reports_no_frames(self, capsys, tmp_path):
        assert main(["watch", str(tmp_path), "--once"]) == 0
        assert "no complete scrape frames" in capsys.readouterr().out
