"""CLI tests."""

import pytest

from repro.cli import main


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "GUPS" in out and "Trident" in out and "figure9" in out

    def test_run_native(self, capsys):
        code = main(["run", "GUPS", "Trident", "--accesses", "2000"])
        assert code == 0
        out = capsys.readouterr().out
        assert "walk fraction" in out
        assert "1GB  mapped" in out

    def test_run_with_baseline(self, capsys):
        code = main(
            ["run", "GUPS", "Trident", "--accesses", "2000", "--baseline", "4KB"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "speedup" in out

    def test_unknown_experiment(self, capsys):
        assert main(["experiment", "nope"]) == 2

    def test_experiment_latency_micro(self, capsys):
        assert main(["experiment", "latency_micro"]) == 0
        out = capsys.readouterr().out
        assert "1GB promotion, pv batched" in out

    def test_unknown_workload_raises(self):
        with pytest.raises(KeyError):
            main(["run", "nope", "Trident"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
