"""Tests for the madvise(MADV_HUGEPAGE) explicit mechanism."""

import pytest

from repro.config import default_machine
from repro.core.madvise import MADV_HUGEPAGE, MADV_NOHUGEPAGE, MadvisePolicy
from repro.sim.system import System

G = default_machine(16).geometry
BASE, MID, LARGE = G.base_size, G.mid_size, G.large_size
LVL_BASE, LVL_MID, LVL_LARGE = 0, 1, 2  # geometry level indices


def make():
    system = System(default_machine(16), MadvisePolicy, seed=3)
    return system, system.create_process("t")


class TestMadvise:
    def test_unadvised_range_gets_base_pages(self):
        system, p = make()
        addr = system.sys_mmap(p, 2 * LARGE)
        system.touch(p, addr)
        assert p.pagetable.translate(addr).page_size == LVL_BASE

    def test_advised_range_gets_large_pages(self):
        system, p = make()
        addr = system.sys_mmap(p, 2 * LARGE)
        system.policy.sys_madvise(p, addr, 2 * LARGE, MADV_HUGEPAGE)
        system.touch(p, addr)
        assert p.pagetable.translate(addr).page_size == LVL_LARGE

    def test_nohugepage_unmarks(self):
        system, p = make()
        addr = system.sys_mmap(p, 2 * LARGE)
        system.policy.sys_madvise(p, addr, 2 * LARGE, MADV_HUGEPAGE)
        system.policy.sys_madvise(p, addr, 2 * LARGE, MADV_NOHUGEPAGE)
        system.touch(p, addr)
        assert p.pagetable.translate(addr).page_size == LVL_BASE

    def test_advice_is_range_scoped(self):
        system, p = make()
        addr = system.sys_mmap(p, 2 * LARGE)
        system.policy.sys_madvise(p, addr, LARGE, MADV_HUGEPAGE)
        system.touch(p, addr)  # inside the advice
        system.touch(p, addr + LARGE)  # outside
        assert p.pagetable.translate(addr).page_size == LVL_LARGE
        assert p.pagetable.translate(addr + LARGE).page_size == LVL_BASE

    def test_promotion_respects_advice(self):
        system, p = make()
        # Build a base-mapped advised range by touching before advising.
        addr = system.sys_mmap(p, LARGE)
        for off in range(0, LARGE, BASE):
            system.touch(p, addr + off)
        assert p.pagetable.count(LVL_LARGE) == 0
        system.settle(20, budget_ns=1e9)
        assert p.pagetable.count(LVL_LARGE) == 0  # unadvised: never
        system.policy.sys_madvise(p, addr, LARGE, MADV_HUGEPAGE)
        system.settle_until_quiet(budget_ns=1e9)
        assert p.pagetable.count(LVL_LARGE) == 1

    def test_adjacent_advice_coalesces(self):
        system, p = make()
        addr = system.sys_mmap(p, 2 * LARGE)
        system.policy.sys_madvise(p, addr, LARGE, MADV_HUGEPAGE)
        system.policy.sys_madvise(p, addr + LARGE, LARGE, MADV_HUGEPAGE)
        assert system.policy.is_advised(p, addr, 2 * LARGE)

    def test_bad_advice_rejected(self):
        system, p = make()
        addr = system.sys_mmap(p, LARGE)
        with pytest.raises(ValueError):
            system.policy.sys_madvise(p, addr, LARGE, 99)

    def test_madvise_oracle_between_4k_and_trident(self):
        """Advising only half the footprint lands between 4KB and Trident."""
        from repro.core.baseline4k import Baseline4KPolicy
        from repro.core.trident import TridentPolicy

        def walks(policy_factory, advise_fraction=None):
            system = System(default_machine(24), policy_factory, seed=6)
            p = system.create_process("t")
            addr = system.sys_mmap(p, 4 * LARGE)
            if advise_fraction is not None:
                system.policy.sys_madvise(
                    p, addr, int(4 * LARGE * advise_fraction), MADV_HUGEPAGE
                )
            import numpy as np

            rng = np.random.default_rng(0)
            vas = addr + rng.integers(0, 4 * LARGE, 20_000)
            system.touch_batch(p, vas)
            return p.tlb.stats.walk_cycles

        w4k = walks(Baseline4KPolicy)
        whalf = walks(MadvisePolicy, advise_fraction=0.5)
        wtri = walks(TridentPolicy)
        assert wtri < whalf < w4k
