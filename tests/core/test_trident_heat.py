"""Trident-heat: access-driven promotion ordering (paper's future work)."""

import numpy as np

from repro.config import default_machine
from repro.core.trident_heat import TridentHeatPolicy
from repro.sim.system import System

G = default_machine(16).geometry
BASE, MID, LARGE = G.base_size, G.mid_size, G.large_size
LVL_BASE, LVL_MID, LVL_LARGE = 0, 1, 2  # geometry level indices


def make(regions=24):
    system = System(default_machine(regions), TridentHeatPolicy, seed=3)
    return system, system.create_process("t")


class TestTridentHeat:
    def test_behaves_like_trident_on_faults(self):
        system, p = make()
        addr = system.sys_mmap(p, 2 * LARGE)
        system.touch(p, addr)
        assert p.pagetable.translate(addr).page_size == LVL_LARGE

    def test_promotes_eventually(self):
        system, p = make()
        for _ in range(G.mids_per_large):
            a = system.sys_mmap(p, MID)
            system.touch(p, a)
        system.settle_until_quiet(budget_ns=1e9)
        assert p.pagetable.count(LVL_LARGE) >= 1

    def test_hot_slot_promoted_before_cold(self):
        system, p = make(regions=32)
        # Two mid-mapped 1GB-mappable regions; one is hot.
        rng = np.random.default_rng(0)
        cold, hot = [], []
        for bucket in (cold, hot):
            for _ in range(G.mids_per_large):
                a = system.sys_mmap(p, MID)
                system.touch(p, a)
                bucket.append(a)
        for _ in range(6):
            for a in hot:
                system.touch(p, a + int(rng.integers(0, MID)))
        # One sampling tick plus a budget for exactly one large promotion.
        promo_cost = system.cost.copy_ns(LARGE) * 1.4
        system.run_daemons(budget_ns=promo_cost)
        larges = [m.va for m in p.pagetable.iter_mappings(LVL_LARGE)]
        if larges:
            hot_extent = p.aspace.extent_of(hot[0])
            assert any(hot_extent.start <= va < hot_extent.end for va in larges)

    def test_heat_decays(self):
        system, p = make()
        policy = system.policy
        policy._heat[(p.pid, 0)] = 8
        list(policy._candidate_stream())
        assert policy._heat.get((p.pid, 0), 0) == 4
