"""THP defrag modes: deferred vs synchronous fault-time compaction."""

import pytest

from repro.config import default_machine
from repro.core.thp import THPPolicy
from repro.sim.system import System

G = default_machine(16).geometry
BASE, MID = G.base_size, G.mid_size
LVL_BASE, LVL_MID, LVL_LARGE = 0, 1, 2  # geometry level indices


def make(defrag):
    system = System(
        default_machine(24), lambda k: THPPolicy(k, defrag=defrag), seed=4
    )
    return system, system.create_process("t")


class TestDefragModes:
    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            make("sometimes")

    def test_defer_falls_back_fast_under_fragmentation(self):
        system, p = make("defer")
        system.fragment()
        addr = system.sys_mmap(p, 2 * MID)
        latency = system.policy.handle_fault(p, addr)
        # Whatever page size it got, the fault never stalled on compaction:
        # the latency is bounded by the plain fault cost of that size.
        cost = system.cost
        mapping = p.pagetable.translate(addr)
        bound = cost.fault_fixed_ns + cost.zero_ns(G.bytes_for(mapping.page_size))
        assert latency <= bound + 1.0

    def test_always_stalls_but_gets_the_huge_page(self):
        system, p = make("always")
        system.fragment()
        addr = system.sys_mmap(p, 2 * MID)
        latency = system.policy.handle_fault(p, addr)
        mapping = p.pagetable.translate(addr)
        if mapping.page_size == LVL_MID:
            # Paid the compaction stall inside the fault.
            assert latency > system.cost.zero_ns(MID)

    def test_always_worsens_tail_vs_defer(self):
        """The Ingens/Quicksilver critique: sync defrag spikes latency."""
        tails = {}
        for mode in ("defer", "always"):
            system, p = make(mode)
            system.fragment()
            worst = 0.0
            for i in range(12):
                addr = system.sys_mmap(p, 2 * MID)
                worst = max(worst, system.policy.handle_fault(p, addr))
            tails[mode] = worst
        assert tails["always"] >= tails["defer"]
