"""Behavioural tests for the OS memory policies over a real System."""

import pytest

from repro.config import default_machine
from repro.core.baseline4k import Baseline4KPolicy
from repro.core.hawkeye import HawkEyePolicy
from repro.core.hugetlbfs import HugetlbfsPolicy
from repro.core.thp import THPPolicy
from repro.core.trident import TridentPolicy
from repro.sim.system import System

MACHINE = default_machine(16)
G = MACHINE.geometry
BASE, MID, LARGE = G.base_size, G.mid_size, G.large_size
LVL_BASE, LVL_MID, LVL_LARGE = 0, 1, 2  # geometry level indices


def make(policy_factory, regions=16, **kwargs):
    system = System(default_machine(regions), policy_factory, seed=3, **kwargs)
    process = system.create_process("t")
    return system, process


class TestBaseline4K:
    def test_faults_map_single_base_pages(self):
        system, p = make(Baseline4KPolicy)
        addr = system.sys_mmap(p, 4 * MID)
        system.touch(p, addr)
        system.touch(p, addr + BASE)
        assert p.pagetable.count(LVL_BASE) == 2
        assert p.pagetable.count(LVL_MID) == 0

    def test_fault_outside_vma_raises(self):
        system, p = make(Baseline4KPolicy)
        with pytest.raises(ValueError):
            system.policy.handle_fault(p, 0xDEAD0000)


class TestTHP:
    def test_fault_maps_mid_when_aligned(self):
        system, p = make(THPPolicy)
        addr = system.sys_mmap(p, 4 * MID)
        system.touch(p, addr + 5)
        m = p.pagetable.translate(addr)
        assert m.page_size == LVL_MID

    def test_fault_falls_back_to_base_in_small_vma(self):
        system, p = make(THPPolicy)
        addr = system.sys_mmap(p, BASE)
        system.touch(p, addr)
        assert p.pagetable.translate(addr).page_size == LVL_BASE

    def test_never_maps_large(self):
        system, p = make(THPPolicy)
        addr = system.sys_mmap(p, 4 * LARGE)
        for off in range(0, 4 * LARGE, BASE * 7):
            system.touch(p, addr + off)
        system.settle(20)
        assert p.pagetable.count(LVL_LARGE) == 0

    def test_khugepaged_promotes_base_to_mid(self):
        system, p = make(THPPolicy)
        # Grow the heap one base page at a time, touching as we go: the
        # mid-aligned slot never fits the (still short) extent at fault
        # time, so everything maps base pages; promotion fixes that later.
        addrs = []
        for _ in range(2 * G.frames_per_mid):
            a = system.sys_mmap(p, BASE)
            system.touch(p, a)
            addrs.append(a)
        assert p.pagetable.count(LVL_BASE) >= G.frames_per_mid
        system.settle(30)
        assert p.pagetable.count(LVL_MID) >= 1
        assert system.policy.stats.promoted[LVL_MID] >= 1

    def test_promotion_frees_old_frames(self):
        system, p = make(THPPolicy)
        addrs = [system.sys_mmap(p, BASE) for _ in range(G.frames_per_mid)]
        for a in addrs:
            system.touch(p, a)
        used_before = system.buddy.used_frames
        system.settle(30)
        # One mid block replaced frames_per_mid base frames: usage unchanged.
        assert system.buddy.used_frames == used_before

    def test_munmap_returns_memory(self):
        system, p = make(THPPolicy)
        addr = system.sys_mmap(p, 2 * MID)
        system.touch(p, addr)
        used = system.buddy.used_frames
        system.sys_munmap(p, addr)
        assert system.buddy.used_frames < used
        assert p.pagetable.mapped_bytes() == 0


class TestTrident:
    def test_fault_maps_large_first(self):
        system, p = make(TridentPolicy)
        addr = system.sys_mmap(p, 2 * LARGE)
        system.touch(p, addr + 123)
        assert p.pagetable.translate(addr).page_size == LVL_LARGE

    def test_fault_falls_back_mid_then_base(self):
        system, p = make(TridentPolicy)
        addr = system.sys_mmap(p, MID)  # too small for large
        system.touch(p, addr)
        assert p.pagetable.translate(addr).page_size == LVL_MID
        addr2 = system.sys_mmap(p, BASE)
        system.touch(p, addr2)
        assert p.pagetable.translate(addr2).page_size == LVL_BASE

    def test_fault_uses_zerofill_pool(self):
        system, p = make(TridentPolicy)
        # An idle period: kzerofilld can use whole-second quanta.
        system.settle(5, budget_ns=1e9)
        assert system.zerofill.pool_size > 0
        addr = system.sys_mmap(p, LARGE, kind="heap")
        latency = system.policy.handle_fault(p, addr)
        assert latency == pytest.approx(system.cost.large_fault_mapped_ns)

    def test_fault_without_pool_zeroes_synchronously(self):
        system, p = make(TridentPolicy)
        assert system.zerofill.pool_size == 0
        addr = system.sys_mmap(p, LARGE)
        latency = system.policy.handle_fault(p, addr)
        assert latency > system.cost.zero_ns(LARGE)

    def test_promotes_incremental_heap_to_large(self):
        system, p = make(TridentPolicy)
        # Grow a heap in mid-sized steps: faults map mid, promotion -> large.
        for _ in range(2 * G.mids_per_large):
            a = system.sys_mmap(p, MID)
            system.touch(p, a)
        assert p.pagetable.count(LVL_LARGE) == 0
        system.settle_until_quiet()
        assert p.pagetable.count(LVL_LARGE) >= 1
        assert system.policy.stats.promoted[LVL_LARGE] >= 1

    def test_promotion_disabled_flag(self):
        system, p = make(lambda k: TridentPolicy(k, promote=False))
        for _ in range(G.mids_per_large):
            a = system.sys_mmap(p, MID)
            system.touch(p, a)
        system.settle(30)
        assert p.pagetable.count(LVL_LARGE) == 0

    def test_1gonly_skips_mid(self):
        system, p = make(lambda k: TridentPolicy(k, use_mid=False))
        addr = system.sys_mmap(p, MID)
        system.touch(p, addr)
        assert p.pagetable.translate(addr).page_size == LVL_BASE

    def test_fragmented_fault_fails_large_then_promotes(self):
        system, p = make(TridentPolicy, regions=24)
        system.fragment()
        addr = system.sys_mmap(p, 2 * LARGE)
        system.touch(p, addr)
        stats = system.policy.stats
        assert stats.fault_large_attempts >= 1
        # Heavy fragmentation: first large attempt typically fails.
        assert stats.fault_large_failures >= 0
        system.settle_until_quiet()
        # Smart compaction should eventually produce at least one chunk.
        assert (
            p.pagetable.count(LVL_LARGE) >= 1
            or stats.promo_large_failures > 0
        )

    def test_smart_vs_normal_compaction_bytes(self):
        copied = {}
        for smart in (True, False):
            system, p = make(
                lambda k, s=smart: TridentPolicy(k, smart_compaction=s), regions=24
            )
            system.fragment(residual_fraction=0.35)
            addr = system.sys_mmap(p, 4 * LARGE)
            for off in range(0, 4 * LARGE, BASE * 3):
                system.touch(p, addr + off)
            system.settle_until_quiet(max_ticks=120)
            compactor = (
                system.smart_compactor if smart else system.normal_compactor
            )
            copied[smart] = compactor.stats.bytes_copied
        # Smart compaction moves no more data than normal for the same job.
        assert copied[True] <= copied[False] or copied[False] == 0


class TestHugetlbfs:
    def test_reserves_pool_at_boot(self):
        system, p = make(lambda k: HugetlbfsPolicy(k, LVL_LARGE))
        assert system.policy.reserved_pages > 0

    def test_eligible_heap_gets_huge_pages(self):
        system, p = make(lambda k: HugetlbfsPolicy(k, LVL_MID))
        addr = system.sys_mmap(p, 4 * MID, kind="heap")
        system.touch(p, addr)
        assert p.pagetable.translate(addr).page_size == LVL_MID

    def test_stack_not_eligible(self):
        system, p = make(lambda k: HugetlbfsPolicy(k, LVL_MID))
        addr = system.sys_mmap(p, 4 * MID, kind="stack")
        system.touch(p, addr)
        assert p.pagetable.translate(addr).page_size == LVL_BASE

    def test_morecore_spill_maps_beyond_heap_end(self):
        system, p = make(lambda k: HugetlbfsPolicy(k, LVL_LARGE))
        addr = system.sys_mmap(p, MID, kind="heap")  # smaller than a large page
        system.touch(p, addr)
        m = p.pagetable.translate(addr)
        assert m.page_size == LVL_LARGE  # rounded up, hugetlb-style

    def test_fragmented_boot_under_reserves(self):
        machine = default_machine(16)
        # Fragment first, then boot the hugetlbfs policy on the same system.
        system2 = System(machine, Baseline4KPolicy, seed=1)
        system2.fragment()
        policy = HugetlbfsPolicy(system2, LVL_LARGE)
        policy.on_boot()
        frames = system2.machine.total_frames
        possible = int(frames * 0.65) >> machine.geometry.large_order
        assert policy.reserved_pages < possible

    def test_pool_returns_on_unmap(self):
        system, p = make(lambda k: HugetlbfsPolicy(k, LVL_MID))
        before = system.policy.reserved_pages
        addr = system.sys_mmap(p, MID, kind="heap")
        system.touch(p, addr)
        assert system.policy.reserved_pages == before - 1
        system.sys_munmap(p, addr)
        assert system.policy.reserved_pages == before


class TestHawkEye:
    def test_promotes_like_thp(self):
        system, p = make(HawkEyePolicy)
        addrs = [system.sys_mmap(p, BASE) for _ in range(2 * G.frames_per_mid)]
        for a in addrs:
            system.touch(p, a)
        system.settle(40)
        assert p.pagetable.count(LVL_MID) >= 1

    def test_bloat_recovery_demotes_untouched_mid(self):
        system, p = make(HawkEyePolicy)
        addr = system.sys_mmap(p, 2 * MID)
        system.touch(p, addr)  # fault maps a whole mid page; 1 page touched
        assert p.pagetable.translate(addr).page_size == LVL_MID
        system.settle(40)
        # Mostly-untouched mid page gets demoted to base pages.
        assert system.policy.stats.demoted[LVL_MID] >= 1
        m = p.pagetable.translate(addr)
        assert m is not None and m.page_size == LVL_BASE

    def test_bloat_recovery_reduces_mapped_bytes(self):
        system, p = make(HawkEyePolicy)
        addr = system.sys_mmap(p, 4 * MID)
        system.touch(p, addr)
        mapped_before = p.pagetable.mapped_bytes()
        system.settle(40)
        assert p.pagetable.mapped_bytes() <= mapped_before

    def test_hot_slots_promoted_first(self):
        system, p = make(HawkEyePolicy)
        # Two candidate mid slots; one is touched heavily (hot).
        cold = [system.sys_mmap(p, BASE) for _ in range(G.frames_per_mid)]
        hot = [system.sys_mmap(p, BASE) for _ in range(G.frames_per_mid)]
        for a in cold + hot:
            system.touch(p, a)
        for _ in range(20):
            for a in hot:
                system.touch(p, a)
        # One kbinmanager pass plus a tiny promotion budget: the hot slot
        # should be first in line.
        system.run_daemons(budget_ns=5e5)
        promoted = [m.va for m in p.pagetable.iter_mappings(LVL_MID)]
        if promoted:
            hot_extent = p.aspace.extent_of(hot[0])
            assert any(hot_extent.start <= va < hot_extent.end for va in promoted)


class TestSystemPlumbing:
    def test_reclaim_feeds_base_faults_under_pressure(self):
        system, p = make(Baseline4KPolicy, regions=16)
        system.fragment(fill_fraction=0.99, residual_fraction=0.95)
        addr = system.sys_mmap(p, 8 * BASE)
        for off in range(0, 8 * BASE, BASE):
            system.touch(p, addr + off)  # needs reclaim to succeed
        assert p.pagetable.count(LVL_BASE) == 8

    def test_split_mapping_on_partial_overlap_munmap(self):
        system, p = make(TridentPolicy)
        # Two adjacent heap VMAs merge; a large fault near the boundary maps
        # across both; munmapping one must split the large page.
        a1 = system.sys_mmap(p, LARGE // 2)
        a2 = system.sys_mmap(p, LARGE)
        system.touch(p, a1)
        m = p.pagetable.translate(a1)
        assert m.page_size == LVL_LARGE
        system.sys_munmap(p, a1)
        assert p.pagetable.translate(a1) is None
        # The portion inside the second VMA survived as base pages.
        assert p.pagetable.translate(a2) is not None
        system.buddy.check_invariants()

    def test_bloat_accounting(self):
        system, p = make(TridentPolicy)
        addr = system.sys_mmap(p, LARGE)
        system.touch(p, addr)  # one touch, whole large page mapped
        assert p.bloat_bytes == LARGE - BASE
