"""Property-based test: compaction never corrupts memory state.

Random interleavings of allocation, free, fragmentation and both
compactors must preserve every buddy/region/rmap invariant, and every
relocation must be reported to the owner exactly once.
"""

import hypothesis.strategies as st
from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro.config import CostModel, PageGeometry
from repro.core.compaction import NormalCompactor, SmartCompactor
from repro.core.rmap import ReverseMap
from repro.mem.buddy import BuddyAllocator
from repro.mem.regions import RegionTracker

GEOM = PageGeometry(base_shift=12, mid_order=2, large_order=4)
N_REGIONS = 4
TOTAL = N_REGIONS * GEOM.frames_per_large


class TrackingOwner:
    """Owner that tracks where each of its blocks currently lives."""

    def __init__(self):
        self.current: set[int] = set()
        self.relocations = 0

    def relocate(self, old, new, order):
        assert old in self.current, "relocation for a block we do not own"
        self.current.remove(old)
        self.current.add(new)
        self.relocations += 1


class CompactionMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.tracker = RegionTracker(TOTAL, GEOM)
        self.buddy = BuddyAllocator(TOTAL, GEOM.large_order, (self.tracker,))
        self.rmap = ReverseMap()
        self.owner = TrackingOwner()
        self.normal = NormalCompactor(
            self.buddy, self.tracker, self.rmap, GEOM, CostModel()
        )
        self.smart = SmartCompactor(
            self.buddy, self.tracker, self.rmap, GEOM, CostModel()
        )

    @rule(order=st.integers(0, 2), movable=st.booleans())
    def alloc(self, order, movable):
        pfn = self.buddy.try_alloc(order, movable)
        if pfn is not None and movable:
            self.rmap.register(pfn, order, self.owner)
            self.owner.current.add(pfn)

    @precondition(lambda self: self.owner.current)
    @rule(data=st.data())
    def free(self, data):
        pfn = data.draw(st.sampled_from(sorted(self.owner.current)))
        self.rmap.unregister(pfn)
        self.owner.current.remove(pfn)
        self.buddy.free(pfn)

    @rule(order=st.integers(2, GEOM.large_order))
    def compact_smart(self, order):
        self.smart.compact(order)

    @rule(order=st.integers(2, GEOM.large_order))
    def compact_normal(self, order):
        self.normal.compact(order)

    @rule(order=st.integers(2, GEOM.large_order), budget=st.floats(0, 5_000))
    def compact_budgeted(self, order, budget):
        self.smart.compact(order, budget_ns=budget)

    @invariant()
    def buddy_consistent(self):
        self.buddy.check_invariants()

    @invariant()
    def region_counters_consistent(self):
        self.tracker.check_against(self.buddy.frame_state)

    @invariant()
    def rmap_matches_owner(self):
        # Every owned block is registered at its current location and is a
        # live buddy allocation.
        for pfn in self.owner.current:
            entry = self.rmap.lookup(pfn)
            assert entry is not None
            assert self.buddy.allocation_at(pfn) is not None


TestCompactionMachine = CompactionMachine.TestCase
TestCompactionMachine.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)
