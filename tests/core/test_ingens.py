"""Tests for the Ingens utilization-threshold baseline."""

from repro.config import default_machine
from repro.core.ingens import IngensPolicy
from repro.core.thp import THPPolicy
from repro.sim.system import System

G = default_machine(16).geometry
BASE, MID = G.base_size, G.mid_size
LVL_BASE, LVL_MID, LVL_LARGE = 0, 1, 2  # geometry level indices


def make(policy):
    system = System(default_machine(16), policy, seed=3)
    return system, system.create_process("t")


def grow_base_pages(system, p, n_pages, touch_fraction=1.0):
    """Grow a heap one base page at a time; touch a fraction repeatedly."""
    addrs = []
    for _ in range(n_pages):
        a = system.sys_mmap(p, BASE)
        addrs.append(a)
    hot = addrs[: int(len(addrs) * touch_fraction)]
    for _ in range(3):
        for a in hot:
            system.touch(p, a)
    return addrs


class TestIngens:
    def test_full_hot_region_promotes(self):
        system, p = make(IngensPolicy)
        grow_base_pages(system, p, 2 * G.frames_per_mid, touch_fraction=1.0)
        system.settle_until_quiet(budget_ns=1e9)
        assert p.pagetable.count(LVL_MID) >= 1

    def test_sparse_region_not_promoted(self):
        system, p = make(IngensPolicy)
        # Map only 30% of each mid slot's pages: below the 90% threshold.
        for slot in range(4):
            base_va = None
            for i in range(G.frames_per_mid):
                a = system.sys_mmap(p, BASE)
                if i < G.frames_per_mid * 3 // 10:
                    system.touch(p, a)
        system.settle(20, budget_ns=1e9)
        assert p.pagetable.count(LVL_MID) == 0

    def test_thp_promotes_where_ingens_declines(self):
        """The bloat trade: one present page is enough for THP, not Ingens."""
        results = {}
        for name, policy in (("thp", THPPolicy), ("ingens", IngensPolicy)):
            system, p = make(policy)
            # One page present per mid slot.
            for _ in range(4):
                a = system.sys_mmap(p, MID)  # VMA big enough for a mid slot
                # fault once at one base page via a tiny adjacent vma trick:
            # Simpler: allocate base pages sparsely across a merged extent.
            system2, p2 = make(policy)
            addrs = []
            for i in range(2 * G.frames_per_mid):
                a = system2.sys_mmap(p2, BASE)
                addrs.append(a)
            for a in addrs[:: G.frames_per_mid]:  # one page per slot
                system2.touch(p2, a)
            system2.settle(30, budget_ns=1e9)
            results[name] = p2.pagetable.count(LVL_MID)
        assert results["thp"] >= 1
        assert results["ingens"] == 0

    def test_ingens_bloat_lower_than_thp(self):
        bloat = {}
        for name, policy in (("thp", THPPolicy), ("ingens", IngensPolicy)):
            system, p = make(policy)
            addrs = []
            for i in range(2 * G.frames_per_mid):
                a = system.sys_mmap(p, BASE)
                addrs.append(a)
            for a in addrs[::4]:  # 25% populated
                system.touch(p, a)
            system.settle(30, budget_ns=1e9)
            bloat[name] = p.bloat_bytes
        assert bloat["ingens"] <= bloat["thp"]
