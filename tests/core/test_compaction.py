"""Tests for normal vs smart compaction."""

import random


from repro.config import CostModel, PageGeometry
from repro.core.compaction import NormalCompactor, SmartCompactor
from repro.core.rmap import ReverseMap
from repro.mem.buddy import BuddyAllocator
from repro.mem.regions import RegionTracker

GEOM = PageGeometry(base_shift=12, mid_order=2, large_order=6)  # large = 64 frames


class RecordingOwner:
    """Test double rmap owner recording relocations."""

    def __init__(self):
        self.moves = []

    def relocate(self, old_pfn, new_pfn, order):
        self.moves.append((old_pfn, new_pfn, order))


def make_system(n_regions=4):
    total = n_regions * GEOM.frames_per_large
    tracker = RegionTracker(total, GEOM)
    buddy = BuddyAllocator(total, GEOM.large_order, listeners=(tracker,))
    rmap = ReverseMap()
    return buddy, tracker, rmap


def fill_scattered(buddy, rmap, owner, frames, rng, region_span=None):
    """Allocate ``frames`` single frames, free none; register in rmap."""
    pfns = []
    for _ in range(frames):
        pfn = buddy.alloc(0)
        rmap.register(pfn, 0, owner)
        pfns.append(pfn)
    return pfns


def fragment_half(buddy, rmap, owner, rng):
    """Fill all memory with frames then free a random half (registered)."""
    pfns = [buddy.alloc(0) for _ in range(buddy.free_frames)]
    rng.shuffle(pfns)
    keep = pfns[: len(pfns) // 2]
    for pfn in pfns[len(pfns) // 2 :]:
        buddy.free(pfn)
    for pfn in keep:
        rmap.register(pfn, 0, owner)
    return keep


class TestSmartCompactor:
    def test_noop_when_block_already_free(self):
        buddy, tracker, rmap = make_system()
        smart = SmartCompactor(buddy, tracker, rmap, GEOM, CostModel())
        result = smart.compact(GEOM.large_order)
        assert result.success
        assert result.bytes_copied == 0

    def test_creates_large_block_from_fragmented_memory(self):
        buddy, tracker, rmap = make_system(n_regions=4)
        owner = RecordingOwner()
        rng = random.Random(1)
        fragment_half(buddy, rmap, owner, rng)
        assert not buddy.has_free_block(GEOM.large_order)
        smart = SmartCompactor(buddy, tracker, rmap, GEOM, CostModel())
        result = smart.compact(GEOM.large_order)
        assert result.success
        assert buddy.has_free_block(GEOM.large_order)
        assert result.bytes_copied > 0
        assert owner.moves  # relocations were reported
        buddy.check_invariants()

    def test_picks_cheapest_source_region(self):
        buddy, tracker, rmap = make_system(n_regions=3)
        owner = RecordingOwner()
        # Region 0 nearly full, region 1 nearly empty, region 2 in between.
        # No region is fully free, so compaction must evacuate one.
        for i in range(60):
            buddy.alloc_at(i, 0)
            rmap.register(i, 0, owner)
        base1 = GEOM.frames_per_large
        for i in range(4):
            buddy.alloc_at(base1 + i, 0)
            rmap.register(base1 + i, 0, owner)
        base2 = 2 * GEOM.frames_per_large
        for i in range(30):
            buddy.alloc_at(base2 + i, 0)
            rmap.register(base2 + i, 0, owner)
        smart = SmartCompactor(buddy, tracker, rmap, GEOM, CostModel())
        result = smart.compact(GEOM.large_order)
        assert result.success
        # Only region 1's four frames should have been copied (cheapest).
        assert result.bytes_copied == 4 * GEOM.base_size
        assert all(base1 <= old < base2 for old, _, _ in owner.moves)

    def test_skips_regions_with_unmovable_content(self):
        buddy, tracker, rmap = make_system(n_regions=2)
        owner = RecordingOwner()
        # Region 0: one movable registered frame + one unmovable frame.
        buddy.alloc_at(0, 0)
        rmap.register(0, 0, owner)
        buddy.alloc_at(1, 0, movable=False)
        # Region 1: a movable frame (no region is fully free).
        base1 = GEOM.frames_per_large
        buddy.alloc_at(base1, 0)
        rmap.register(base1, 0, owner)
        smart = SmartCompactor(buddy, tracker, rmap, GEOM, CostModel())
        result = smart.compact(GEOM.large_order)
        # Region 1 can be evacuated into region 0; region 0 never selected.
        assert result.success
        assert all(old >= base1 for old, _, _ in owner.moves)

    def test_refuses_rmapless_blocks_without_copying(self):
        buddy, tracker, rmap = make_system(n_regions=2)
        # Region 0: movable but unregistered (like the zero-fill pool).
        buddy.alloc_at(0, 0)
        base1 = GEOM.frames_per_large
        buddy.alloc_at(base1, 0)  # also unregistered
        smart = SmartCompactor(buddy, tracker, rmap, GEOM, CostModel())
        result = smart.compact(GEOM.large_order)
        assert not result.success
        assert result.bytes_copied == 0

    def test_fails_when_no_capacity(self):
        buddy, tracker, rmap = make_system(n_regions=2)
        owner = RecordingOwner()
        rng = random.Random(2)
        # Fill everything; nothing free to move into.
        pfns = [buddy.alloc(0) for _ in range(buddy.free_frames)]
        for pfn in pfns:
            rmap.register(pfn, 0, owner)
        smart = SmartCompactor(buddy, tracker, rmap, GEOM, CostModel())
        result = smart.compact(GEOM.large_order)
        assert not result.success

    def test_moves_mid_blocks_as_units(self):
        buddy, tracker, rmap = make_system(n_regions=3)
        owner = RecordingOwner()
        mid = GEOM.mid_order
        # One mid block in region 1; regions 0 and 2 partially filled so
        # nothing is fully free and region 1 is the cheapest source.
        base1 = GEOM.frames_per_large
        buddy.alloc_at(base1, mid)
        rmap.register(base1, mid, owner)
        for i in range(32):
            buddy.alloc_at(i, 0)
            rmap.register(i, 0, owner)
        base2 = 2 * GEOM.frames_per_large
        for i in range(40):
            buddy.alloc_at(base2 + i, 0)
            rmap.register(base2 + i, 0, owner)
        smart = SmartCompactor(buddy, tracker, rmap, GEOM, CostModel())
        result = smart.compact(GEOM.large_order)
        assert result.success
        assert any(o == base1 and order == mid for o, _, order in owner.moves)
        buddy.check_invariants()


class TestNormalCompactor:
    def test_creates_block_sequentially(self):
        buddy, tracker, rmap = make_system(n_regions=4)
        owner = RecordingOwner()
        rng = random.Random(3)
        fragment_half(buddy, rmap, owner, rng)
        normal = NormalCompactor(buddy, tracker, rmap, GEOM, CostModel())
        result = normal.compact(GEOM.large_order)
        assert result.success
        buddy.check_invariants()

    def test_aborts_region_on_unmovable_and_wastes_copies(self):
        buddy, tracker, rmap = make_system(n_regions=2)
        owner = RecordingOwner()
        # Region 0: movable frame at 0, unmovable at 5 -> abort after moving 0.
        buddy.alloc_at(0, 0)
        rmap.register(0, 0, owner)
        buddy.alloc_at(5, 0, movable=False)
        normal = NormalCompactor(buddy, tracker, rmap, GEOM, CostModel())
        result = normal.compact(GEOM.large_order)
        # Region 1 is free already -> success pre-check... region 1 fully
        # free means the first has_free_block check succeeds instantly.
        assert result.success
        # Now occupy region 1 so compaction must actually work region 0.
        buddy2, tracker2, rmap2 = make_system(n_regions=2)
        buddy2.alloc_at(0, 0)
        rmap2.register(0, 0, owner)
        buddy2.alloc_at(5, 0, movable=False)
        base1 = GEOM.frames_per_large
        buddy2.alloc_at(base1 + 10, 0)  # unregistered movable in region 1
        normal2 = NormalCompactor(buddy2, tracker2, rmap2, GEOM, CostModel())
        result2 = normal2.compact(GEOM.large_order)
        assert not result2.success
        # Every byte normal compaction copied here was wasted (both regions
        # were abandoned on an unmovable/unmigratable frame).
        assert result2.wasted_bytes == result2.bytes_copied
        assert result2.wasted_bytes >= GEOM.base_size

    def test_smart_copies_less_than_normal(self):
        """The Figure 7 claim at unit scale: smart copies fewer bytes."""
        rng = random.Random(7)
        results = {}
        for cls in (NormalCompactor, SmartCompactor):
            buddy, tracker, rmap = make_system(n_regions=8)
            owner = RecordingOwner()
            rng_local = random.Random(7)
            fragment_half(buddy, rmap, owner, rng_local)
            compactor = cls(buddy, tracker, rmap, GEOM, CostModel())
            res = compactor.compact(GEOM.large_order)
            assert res.success
            results[cls.__name__] = res.bytes_copied
        assert results["SmartCompactor"] <= results["NormalCompactor"]

    def test_cursor_advances_between_attempts(self):
        buddy, tracker, rmap = make_system(n_regions=4)
        normal = NormalCompactor(buddy, tracker, rmap, GEOM, CostModel())
        c0 = normal._cursor
        normal.compact(GEOM.large_order)
        assert normal._cursor != c0

    def test_stats_accumulate(self):
        buddy, tracker, rmap = make_system(n_regions=4)
        owner = RecordingOwner()
        fragment_half(buddy, rmap, owner, random.Random(4))
        normal = NormalCompactor(buddy, tracker, rmap, GEOM, CostModel())
        normal.compact(GEOM.large_order)
        normal.compact(GEOM.large_order)
        assert normal.stats.attempts == 2
        assert normal.stats.bytes_copied >= 0
