"""Unit tests for the reverse map."""

import pytest

from repro.core.rmap import ReverseMap


class SpyOwner:
    def __init__(self):
        self.calls = []

    def relocate(self, old, new, order):
        self.calls.append((old, new, order))


class TestReverseMap:
    def test_register_lookup_unregister(self):
        rmap = ReverseMap()
        owner = SpyOwner()
        rmap.register(10, 2, owner)
        assert rmap.lookup(10) == (2, owner)
        assert len(rmap) == 1
        rmap.unregister(10)
        assert rmap.lookup(10) is None
        assert len(rmap) == 0

    def test_double_register_rejected(self):
        rmap = ReverseMap()
        rmap.register(5, 0, SpyOwner())
        with pytest.raises(ValueError):
            rmap.register(5, 0, SpyOwner())

    def test_unregister_unknown_rejected(self):
        with pytest.raises(ValueError):
            ReverseMap().unregister(1)

    def test_moved_repoints_and_notifies(self):
        rmap = ReverseMap()
        owner = SpyOwner()
        rmap.register(10, 3, owner)
        rmap.moved(10, 42)
        assert rmap.lookup(10) is None
        assert rmap.lookup(42) == (3, owner)
        assert owner.calls == [(10, 42, 3)]

    def test_distinct_pfns_independent(self):
        rmap = ReverseMap()
        a, b = SpyOwner(), SpyOwner()
        rmap.register(1, 0, a)
        rmap.register(2, 0, b)
        rmap.moved(1, 9)
        assert rmap.lookup(2) == (0, b)
        assert not b.calls
