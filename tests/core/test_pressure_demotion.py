"""Memory-pressure demotion: huge pages never cause avoidable OOMs."""


from repro.config import default_machine
from repro.core.baseline4k import Baseline4KPolicy
from repro.core.trident import TridentPolicy
from repro.sim.system import System

G = default_machine(8).geometry
BASE, MID, LARGE = G.base_size, G.mid_size, G.large_size
LVL_BASE, LVL_MID, LVL_LARGE = 0, 1, 2  # geometry level indices


def make(regions=8):
    system = System(default_machine(regions), TridentPolicy, seed=2)
    return system, system.create_process("t")


class TestPressureDemotion:
    def test_bloated_large_pages_shed_under_pressure(self):
        system, p = make(regions=8)
        # Fill most memory with large pages, each touched on one page only.
        addr = system.sys_mmap(p, 7 * LARGE)
        for off in range(0, 7 * LARGE, LARGE):
            system.touch(p, addr + off)
        assert p.pagetable.count(LVL_LARGE) >= 6
        # Another process needs lots of base pages: without demotion this
        # would OOM; with it, dead frames inside the bloat get freed.
        q = system.create_process("q")
        # Page-at-a-time mmaps with interleaved touches: only base pages
        # ever apply, so every fault needs an order-0 frame.
        for _ in range(G.frames_per_large):
            qaddr = system.sys_mmap(q, BASE, kind="stack")
            system.touch(q, qaddr)
        assert q.pagetable.count(LVL_BASE) == G.frames_per_large
        assert system.policy.stats.demoted[LVL_LARGE] >= 1
        system.buddy.check_invariants()

    def test_touched_pages_survive_demotion(self):
        system, p = make(regions=8)
        addr = system.sys_mmap(p, 7 * LARGE)
        for off in range(0, 7 * LARGE, LARGE):
            system.touch(p, addr + off)  # one touched page per large page
            system.touch(p, addr + off + 5 * BASE)  # and another
        pfn_before = p.pagetable.translate(addr).pfn
        q = system.create_process("q")
        for _ in range(G.frames_per_large):
            qaddr = system.sys_mmap(q, BASE, kind="stack")
            system.touch(q, qaddr)
        # The demoted process's touched addresses are still mapped, in
        # place, on their original frames.
        m = p.pagetable.translate(addr)
        assert m is not None
        if m.page_size == LVL_BASE:
            assert m.pfn == pfn_before
        m2 = p.pagetable.translate(addr + 5 * BASE)
        assert m2 is not None

    def test_live_huge_pages_not_demoted(self):
        system, p = make(regions=8)
        addr = system.sys_mmap(p, 2 * LARGE)
        # Touch every page: fully live, must never be split for pressure.
        for off in range(0, 2 * LARGE, BASE):
            system.touch(p, addr + off)
        q = system.create_process("q")
        qaddr = system.sys_mmap(q, 4 * LARGE, kind="stack")
        filled = 0
        try:
            for off in range(0, 4 * LARGE, BASE):
                system.touch(q, qaddr + off)
                filled += 1
        except Exception:
            pass  # genuine OOM is acceptable here; splitting live pages is not
        assert p.pagetable.count(LVL_LARGE) == 2
        assert system.policy.stats.demoted[LVL_LARGE] == 0

    def test_baseline_unaffected(self):
        system = System(default_machine(8), Baseline4KPolicy, seed=1)
        p = system.create_process("t")
        addr = system.sys_mmap(p, MID)
        system.touch(p, addr)
        assert system.policy.stats.demoted[LVL_LARGE] == 0
