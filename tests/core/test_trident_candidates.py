"""khugepaged candidate-stream order (Figure 5 scan) after the bisect rewrite."""

from repro.config import default_machine
from repro.core.trident import TridentPolicy
from repro.sim.system import System
from repro.vm.mappability import mappable_ranges

BASE, MID, LARGE = 0, 1, 2  # three-tier level indices (x86-shaped test geometry)


def make(regions=16, **policy_kwargs):
    system = System(
        default_machine(regions),
        lambda kernel: TridentPolicy(kernel, **policy_kwargs),
        seed=3,
    )
    process = system.create_process("t")
    return system, process


def naive_candidates(policy):
    """The pre-bisect reference: linear overlap scan per mid slot."""
    geometry = policy.kernel.geometry
    out = []
    for process in list(policy.kernel.processes):
        for vma in process.aspace.iter_extents():
            covered = []
            for start, end in mappable_ranges(vma, LARGE, geometry):
                covered.append((start, end))
                out.append((process.pid, start, LARGE))
            if not policy.use_mid:
                continue
            for start, _ in mappable_ranges(vma, MID, geometry):
                if not any(s <= start < e for s, e in covered):
                    out.append((process.pid, start, MID))
    return out


def stream_of(policy):
    return [(p.pid, start, size) for p, start, size in policy._candidate_stream()]


class TestCandidateStreamOrder:
    def test_matches_naive_reference_on_mixed_vmas(self):
        system, p = make()
        G = system.geometry
        # A VMA with large-mappable interior plus mid-only edges, a
        # mid-only VMA, and a sub-mid VMA that yields nothing.
        system.sys_mmap(p, 2 * G.large_size + 3 * G.mid_size)
        system.sys_mmap(p, 5 * G.mid_size)
        system.sys_mmap(p, G.base_size)
        candidates = stream_of(system.policy)
        assert candidates == naive_candidates(system.policy)
        sizes = {size for _, _, size in candidates}
        assert sizes == {LARGE, MID}

    def test_mid_slots_inside_large_slots_are_skipped(self):
        system, p = make()
        G = system.geometry
        system.sys_mmap(p, G.large_size)
        candidates = stream_of(system.policy)
        large_spans = [
            (start, start + G.large_size)
            for _, start, size in candidates
            if size == LARGE
        ]
        for _, start, size in candidates:
            if size == MID:
                assert not any(s <= start < e for s, e in large_spans)

    def test_matches_naive_across_processes(self):
        system, p1 = make()
        p2 = system.create_process("t2")
        G = system.geometry
        system.sys_mmap(p1, G.large_size + G.mid_size)
        system.sys_mmap(p2, 3 * G.mid_size)
        assert stream_of(system.policy) == naive_candidates(system.policy)

    def test_use_mid_false_yields_only_large(self):
        system, p = make(use_mid=False)
        G = system.geometry
        system.sys_mmap(p, 2 * G.large_size + 2 * G.mid_size)
        candidates = stream_of(system.policy)
        assert candidates == naive_candidates(system.policy)
        assert all(size == LARGE for _, _, size in candidates)
