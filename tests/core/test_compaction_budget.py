"""Budgeted compaction and the pv exchanger hook."""

import random

from repro.config import CostModel, PageGeometry
from repro.core.compaction import NormalCompactor, SmartCompactor
from repro.core.rmap import ReverseMap
from repro.mem.buddy import BuddyAllocator
from repro.mem.regions import RegionTracker

GEOM = PageGeometry(base_shift=12, mid_order=2, large_order=6)


class RecordingOwner:
    def __init__(self):
        self.moves = []

    def relocate(self, old, new, order):
        self.moves.append((old, new, order))


def make_fragmented(n_regions=6, seed=0):
    total = n_regions * GEOM.frames_per_large
    tracker = RegionTracker(total, GEOM)
    buddy = BuddyAllocator(total, GEOM.large_order, listeners=(tracker,))
    rmap = ReverseMap()
    owner = RecordingOwner()
    rng = random.Random(seed)
    pfns = [buddy.alloc(0) for _ in range(total)]
    rng.shuffle(pfns)
    for pfn in pfns[len(pfns) // 2 :]:
        buddy.free(pfn)
    for pfn in pfns[: len(pfns) // 2]:
        rmap.register(pfn, 0, owner)
    return buddy, tracker, rmap, owner


class TestBudgetedCompaction:
    def test_zero_budget_makes_no_progress_but_no_damage(self):
        buddy, tracker, rmap, owner = make_fragmented()
        smart = SmartCompactor(buddy, tracker, rmap, GEOM, CostModel())
        result = smart.compact(GEOM.large_order, budget_ns=0.0)
        assert not result.success
        assert result.blocks_moved == 0
        buddy.check_invariants()

    def test_partial_progress_persists_across_attempts(self):
        buddy, tracker, rmap, owner = make_fragmented()
        smart = SmartCompactor(buddy, tracker, rmap, GEOM, CostModel())
        cost = CostModel()
        tiny = cost.copy_ns(GEOM.base_size) * 3  # ~3 moves per attempt
        attempts = 0
        while not buddy.has_free_block(GEOM.large_order) and attempts < 500:
            smart.compact(GEOM.large_order, budget_ns=tiny)
            attempts += 1
        assert buddy.has_free_block(GEOM.large_order)
        assert attempts > 1  # genuinely incremental
        buddy.check_invariants()

    def test_unbudgeted_equals_infinite_budget(self):
        results = []
        for budget in (float("inf"),):
            buddy, tracker, rmap, owner = make_fragmented(seed=3)
            smart = SmartCompactor(buddy, tracker, rmap, GEOM, CostModel())
            results.append(smart.compact(GEOM.large_order, budget_ns=budget))
        assert results[0].success

    def test_normal_compactor_budget(self):
        buddy, tracker, rmap, owner = make_fragmented(seed=5)
        normal = NormalCompactor(buddy, tracker, rmap, GEOM, CostModel())
        result = normal.compact(GEOM.large_order, budget_ns=1.0)
        assert result.time_ns >= 0
        buddy.check_invariants()


class TestPVExchangerHook:
    def test_mid_blocks_exchange_instead_of_copy(self):
        buddy, tracker, rmap, owner = make_fragmented(n_regions=4, seed=2)
        smart = SmartCompactor(buddy, tracker, rmap, GEOM, CostModel())
        calls = []
        smart.pv_exchanger = lambda src, dst, order: calls.append(
            (src, dst, order)
        ) or 100.0
        # Plant a mid block in an otherwise-sparse region.
        src = None
        for region in tracker.best_source_regions():
            start = tracker.region_start(region)
            try:
                buddy.alloc_at(start, GEOM.mid_order)
                src = start
                break
            except ValueError:
                continue
        if src is None:  # no aligned space: make one
            return
        rmap.register(src, GEOM.mid_order, owner)
        smart.compact(GEOM.large_order)
        moved_mid = [c for c in calls if c[2] == GEOM.mid_order]
        # If the planted mid moved, it moved via the exchanger.
        mid_copied = any(o == GEOM.mid_order for _, _, o in owner.moves)
        if mid_copied:
            assert moved_mid

    def test_base_blocks_always_copy(self):
        buddy, tracker, rmap, owner = make_fragmented(seed=4)
        smart = SmartCompactor(buddy, tracker, rmap, GEOM, CostModel())
        calls = []
        smart.pv_exchanger = lambda *a: calls.append(a) or 1.0
        result = smart.compact(GEOM.large_order)
        # All fragmented content is base frames: no exchanges, all copies.
        base_calls = [c for c in calls if c[2] == 0]
        assert not base_calls
        if result.blocks_moved:
            assert result.bytes_copied > 0
