"""Section 6 latency arithmetic at real x86 scale (pure cost model)."""

import pytest

from repro.config import X86_GEOMETRY, CostModel


class TestSection6Latencies:
    """The paper's quoted promotion latencies emerge from the cost model."""

    cost = CostModel()
    exchanges = X86_GEOMETRY.mids_per_large  # 512

    def test_copy_based_promotion_near_600ms(self):
        ns = self.cost.copy_ns(X86_GEOMETRY.large_size)
        assert 550e6 < ns < 650e6

    def test_unbatched_pv_near_30ms(self):
        ns = self.exchanges * (
            self.cost.hypercall_ns + self.cost.exchange_unbatched_ns
        )
        assert 25e6 < ns < 35e6

    def test_batched_pv_near_500us(self):
        ns = self.cost.hypercall_ns + self.exchanges * self.cost.exchange_batched_ns
        assert 450e3 < ns < 550e3

    def test_512_exchanges_fit_one_hypercall(self):
        """Two shared 4KB pages hold 512 8-byte gPAs each (the paper's ABI)."""
        from repro.virt.hypercall import PVExchangeInterface

        assert PVExchangeInterface.BATCH_CAPACITY == 512
        assert 512 * 8 <= 4096

    def test_scaled_cost_model_preserves_promotion_totals(self):
        """A scaled 1GB-class promotion costs the same wall time as real."""
        from repro.config import SCALED_GEOMETRY

        scaled = self.cost.scaled_for(SCALED_GEOMETRY)
        real_copy = self.cost.copy_ns(X86_GEOMETRY.large_size)
        scaled_copy = scaled.copy_ns(SCALED_GEOMETRY.large_size)
        assert scaled_copy == pytest.approx(real_copy)
        # Batched exchange of a full scaled region matches the real ~500us.
        scaled_exchanges = SCALED_GEOMETRY.mids_per_large
        scaled_ns = (
            scaled.hypercall_ns + scaled_exchanges * scaled.exchange_batched_ns
        )
        real_ns = (
            self.cost.hypercall_ns + self.exchanges * self.cost.exchange_batched_ns
        )
        assert scaled_ns == pytest.approx(real_ns, rel=0.01)

    def test_scaled_zeroing_totals_match(self):
        from repro.config import SCALED_GEOMETRY

        scaled = self.cost.scaled_for(SCALED_GEOMETRY)
        # Zeroing one scaled large page == zeroing one real 1GB page.
        assert scaled.zero_ns(SCALED_GEOMETRY.large_size) == pytest.approx(
            self.cost.zero_ns(X86_GEOMETRY.large_size)
        )

    def test_identity_for_real_geometry(self):
        assert self.cost.scaled_for(X86_GEOMETRY) is self.cost
