"""Trident-pv batching behaviour and dual-level fragmentation combos."""


from repro.config import default_machine
from repro.core.trident import TridentPolicy
from repro.virt.hypercall import PVExchangeInterface
from repro.virt.machine import VirtualMachine
from repro.virt.tridentpv import TridentPVPolicy

GUEST = default_machine(16)
HOST = default_machine(24)
G = GUEST.geometry
BASE, MID, LARGE = G.base_size, G.mid_size, G.large_size
LVL_BASE, LVL_MID, LVL_LARGE = 0, 1, 2  # geometry level indices


def make_vm(batched=True):
    def guest_factory(kernel):
        iface = PVExchangeInterface(kernel.hypervisor, kernel.cost)
        return TridentPVPolicy(kernel, iface, batched=batched)

    vm = VirtualMachine(GUEST, HOST, guest_factory, TridentPolicy, seed=9)
    return vm, vm.create_guest_process("g")


def grow_mids(vm, p, n):
    for _ in range(n):
        a = vm.guest.sys_mmap(p, MID)
        vm.guest.touch(p, a)


class TestBatching:
    def test_batched_promotion_cheaper_than_unbatched(self):
        costs = {}
        for batched in (True, False):
            vm, p = make_vm(batched)
            grow_mids(vm, p, G.mids_per_large)
            vm.guest.settle_until_quiet(budget_ns=1e9)
            policy = vm.guest.policy
            assert policy.stats.promoted[LVL_LARGE] >= 1
            costs[batched] = policy.pv.time_ns
        assert costs[True] < costs[False]

    def test_batched_uses_fewer_hypercalls(self):
        calls = {}
        for batched in (True, False):
            vm, p = make_vm(batched)
            grow_mids(vm, p, G.mids_per_large)
            vm.guest.settle_until_quiet(budget_ns=1e9)
            pv = vm.guest.policy.pv
            calls[batched] = (pv.hypercalls, pv.exchanges)
        # Same exchanges either way, far fewer world switches batched.
        assert calls[True][1] == calls[False][1]
        assert calls[True][0] < calls[False][0]

    def test_empty_exchange_is_free(self):
        vm, _ = make_vm()
        assert vm.guest.policy.pv.exchange([]) == 0.0


class TestDualLevelFragmentation:
    def test_host_fragmentation_degrades_ept_sizes(self):
        # Fragment the HOST before the VM's memory is backed: EPT entries
        # come out small, capping the effective page size.
        def build(fragment_host):
            host_sys_machine = default_machine(48)
            guest_machine = default_machine(16)
            vm = VirtualMachine.__new__(VirtualMachine)
            from repro.sim.system import System
            from repro.virt.hypervisor import Hypervisor
            from repro.virt.machine import GuestSystem

            vm.host = System(host_sys_machine, TridentPolicy, seed=3)
            if fragment_host:
                vm.host.fragment()
            vm.hypervisor = Hypervisor(vm.host, guest_machine.total_bytes)
            vm.guest = GuestSystem(
                guest_machine, TridentPolicy, vm.hypervisor, seed=4
            )
            p = vm.guest.create_process("g")
            addr = vm.guest.sys_mmap(p, 2 * LARGE)
            for off in range(0, 2 * LARGE, MID):
                vm.guest.touch(p, addr + off)
            return p.tlb.stats

        clean = build(False)
        fragged = build(True)
        assert fragged.walk_cycles >= clean.walk_cycles
