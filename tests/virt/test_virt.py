"""Tests for the hypervisor, guest/host composition, and Trident-pv."""

import pytest

from repro.config import default_machine
from repro.core.thp import THPPolicy
from repro.core.trident import TridentPolicy
from repro.virt.hypercall import PVExchangeInterface
from repro.virt.machine import VirtualMachine
from repro.virt.tridentpv import TridentPVPolicy

GUEST = default_machine(12)
HOST = default_machine(18)
G = GUEST.geometry
BASE, MID, LARGE = G.base_size, G.mid_size, G.large_size
LVL_BASE, LVL_MID, LVL_LARGE = 0, 1, 2  # geometry level indices


def make_vm(guest_policy=TridentPolicy, host_policy=TridentPolicy, pv=False):
    if pv:
        def guest_factory(kernel):
            iface = PVExchangeInterface(kernel.hypervisor, kernel.cost)
            return TridentPVPolicy(kernel, iface)
    else:
        guest_factory = guest_policy
    vm = VirtualMachine(GUEST, HOST, guest_factory, host_policy, seed=2)
    return vm, vm.create_guest_process("g")


class TestHypervisor:
    def test_guest_ram_is_one_host_allocation(self):
        vm, _ = make_vm()
        hv = vm.hypervisor
        extents = hv.vm_process.aspace.iter_extents()
        assert len(extents) == 1
        assert extents[0].length == GUEST.total_bytes

    def test_ept_fault_backs_gpa_once(self):
        vm, _ = make_vm()
        hv = vm.hypervisor
        latency = hv.ensure_backed(0)
        assert latency > 0
        assert hv.ensure_backed(0) == 0.0
        assert hv.ept_faults == 1

    def test_gpa_bounds_checked(self):
        vm, _ = make_vm()
        with pytest.raises(ValueError):
            vm.hypervisor.hva(GUEST.total_bytes)

    def test_host_rejects_undersized_memory(self):
        with pytest.raises(ValueError):
            VirtualMachine(HOST, GUEST, TridentPolicy, TridentPolicy)


class TestGuestExecution:
    def test_touch_translates_through_both_levels(self):
        vm, p = make_vm()
        addr = vm.guest.sys_mmap(p, 2 * MID)
        vm.guest.touch(p, addr)
        guest_mapping = p.pagetable.translate(addr)
        assert guest_mapping is not None
        gpa = p.tlb.gpa_of(guest_mapping, addr)
        assert vm.hypervisor.host_table.translate(vm.hypervisor.hva(gpa)) is not None

    def test_trident_both_levels_gives_large_effective(self):
        vm, p = make_vm()
        addr = vm.guest.sys_mmap(p, 2 * LARGE)
        vm.guest.touch(p, addr)
        assert p.pagetable.translate(addr).page_size == LVL_LARGE
        # Second access inside the same large page should hit (effective
        # page size LARGE at both levels).
        vm.guest.touch(p, addr + MID)
        assert p.tlb.stats.walks == 1

    def test_thp_host_caps_effective_size(self):
        vm, p = make_vm(guest_policy=TridentPolicy, host_policy=THPPolicy)
        addr = vm.guest.sys_mmap(p, LARGE)
        vm.guest.touch(p, addr)
        gm = p.pagetable.translate(addr)
        hm = p.tlb.host_mapping_for(gm, addr)
        assert gm.page_size == LVL_LARGE
        assert hm.page_size == LVL_MID  # host THP never maps 1GB


class TestExchangeHypercall:
    def test_exchange_swaps_backing(self):
        # THP host: each mid-sized gPA range gets its own mid host page, so
        # the two sides have distinct backing to swap.
        vm, p = make_vm(host_policy=THPPolicy)
        hv = vm.hypervisor
        gpa_a, gpa_b = 0, MID
        for off in range(0, MID, BASE):
            hv.ensure_backed(gpa_a + off)
            hv.ensure_backed(gpa_b + off)
        before_a = hv.host_table.translate(hv.hva(gpa_a)).pfn
        before_b = hv.host_table.translate(hv.hva(gpa_b)).pfn
        hv.exchange_ranges([(gpa_a, gpa_b, MID)])
        after_a = hv.host_table.translate(hv.hva(gpa_a)).pfn
        after_b = hv.host_table.translate(hv.hva(gpa_b)).pfn
        assert after_a == before_b
        assert after_b == before_a

    def test_exchange_splits_covering_large_page(self):
        vm, p = make_vm()
        hv = vm.hypervisor
        hv.ensure_backed(0)  # host Trident maps a whole large page
        assert hv.host_table.translate(hv.hva(0)).page_size == LVL_LARGE
        hv.exchange_ranges([(0, MID, MID)])
        # After the exchange the covering page was split to mid granularity.
        assert hv.host_table.translate(hv.hva(0)).page_size == LVL_MID
        vm.host.buddy.check_invariants()

    def test_misaligned_exchange_rejected(self):
        vm, _ = make_vm()
        with pytest.raises(ValueError):
            vm.hypervisor.exchange_ranges([(1, MID, MID)])

    def test_batched_cheaper_than_unbatched(self):
        vm, _ = make_vm()
        iface = PVExchangeInterface(vm.hypervisor, vm.host.cost)
        pairs = [(i * MID, (i + 8) * MID, MID) for i in range(4)]
        batched = iface.pv_promotion_ns(512, batched=True)
        unbatched = iface.pv_promotion_ns(512, batched=False)
        copy = iface.copy_promotion_ns((1 << 30))
        assert batched < unbatched < copy

    def test_interface_counts_hypercalls(self):
        vm, _ = make_vm()
        iface = PVExchangeInterface(vm.hypervisor, vm.host.cost)
        spent = iface.exchange([(0, MID, MID)], batched=True)
        assert spent > 0
        assert iface.hypercalls == 1
        assert iface.exchanges >= 1


class TestTridentPV:
    def _grow_mid_heap(self, vm, p, n_mids):
        for _ in range(n_mids):
            a = vm.guest.sys_mmap(p, MID)
            vm.guest.touch(p, a)

    def test_pv_promotion_exchanges_instead_of_copying(self):
        vm, p = make_vm(pv=True)
        self._grow_mid_heap(vm, p, 2 * G.mids_per_large)
        vm.guest.settle_until_quiet()
        policy = vm.guest.policy
        assert policy.stats.promoted[LVL_LARGE] >= 1
        assert policy.pv_promotions >= 1
        assert policy.pv.exchanges > 0
        # Mid chunks were exchanged, not copied.
        assert policy.stats.promo_copy_bytes < MID * G.mids_per_large

    def test_pv_faster_than_copy_for_mid_promotions(self):
        def run(pv):
            vm, p = make_vm(pv=pv)
            self._grow_mid_heap(vm, p, G.mids_per_large)
            vm.guest.settle_until_quiet()
            return vm.guest.policy.stats.daemon_ns, vm.guest.policy

        pv_ns, pv_policy = run(True)
        copy_ns, copy_policy = run(False)
        assert pv_policy.stats.promoted[LVL_LARGE] >= 1
        assert copy_policy.stats.promoted[LVL_LARGE] >= 1
        assert pv_ns < copy_ns

    def test_base_pages_still_copy(self):
        vm, p = make_vm(pv=True)
        # Base-page-only heap: grow one base page at a time.
        for _ in range(G.frames_per_large):
            a = vm.guest.sys_mmap(p, BASE)
            vm.guest.touch(p, a)
        vm.guest.settle_until_quiet()
        policy = vm.guest.policy
        if policy.stats.promoted[LVL_LARGE]:
            assert policy.stats.promo_copy_bytes > 0
