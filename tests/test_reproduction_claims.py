"""The capstone check: regenerated results satisfy the paper's claims.

Runs only when a full ``python -m repro.experiments.run_all`` sweep has
populated ``report/`` (skipped otherwise, so plain test runs stay fast).
"""

import os

import pytest

from repro.analysis.compare import check_all

REPORT_DIR = "report"
REQUIRED = ("figure1.csv", "figure9.csv", "table3.csv", "latency_micro.csv")

have_reports = all(
    os.path.exists(os.path.join(REPORT_DIR, f)) for f in REQUIRED
)


@pytest.mark.skipif(
    not have_reports, reason="run `python -m repro.experiments.run_all` first"
)
class TestReproductionClaims:
    def test_no_claim_out_of_band(self):
        results = check_all(REPORT_DIR)
        bad = [
            f"{r.claim.id}: measured {r.measured_str}, "
            f"band [{r.claim.lo:g}, {r.claim.hi:g}]"
            for r in results
            if r.status == "OUT-OF-BAND"
        ]
        assert not bad, "\n".join(bad)

    def test_most_claims_evaluable(self):
        results = check_all(REPORT_DIR)
        missing = [r.claim.id for r in results if r.status == "MISSING"]
        assert len(missing) <= 3, missing
