"""Tests for the access-bit sampler."""

import numpy as np

from repro.config import default_machine
from repro.core.baseline4k import Baseline4KPolicy
from repro.sim.system import System
from repro.vm.sampler import AccessBitSampler

G = default_machine(16).geometry
BASE, MID, LARGE = G.base_size, G.mid_size, G.large_size


def make():
    system = System(default_machine(16), Baseline4KPolicy, seed=2)
    p = system.create_process("t")
    return system, p


class TestAccessBitSampler:
    def test_counts_attribute_to_regions(self):
        system, p = make()
        addr = system.sys_mmap(p, 2 * LARGE, kind="heap")
        sampler = AccessBitSampler(p, G)
        system.touch(p, addr)
        system.touch(p, addr + LARGE)
        sampler.sample()
        assert sum(sampler.counts.values()) == 2
        assert sampler.samples == 1

    def test_sample_clears_bits(self):
        system, p = make()
        addr = system.sys_mmap(p, LARGE)
        system.touch(p, addr)
        sampler = AccessBitSampler(p, G)
        sampler.sample()
        assert not p.pagetable.accessed_mappings()
        sampler.sample()  # nothing new set
        assert sum(sampler.counts.values()) == 1

    def test_hot_region_dominates_density(self):
        system, p = make()
        cold = system.sys_mmap(p, 2 * LARGE)
        system.sys_mmap(p, BASE, kind="stack")  # split extents
        hot = system.sys_mmap(p, 2 * MID)  # small, only mid-mappable
        sampler = AccessBitSampler(p, G)
        rng = np.random.default_rng(0)
        system.touch_batch(p, cold + rng.integers(0, 2 * LARGE, 50))
        for _ in range(3):
            system.touch_batch(p, hot + rng.integers(0, 2 * MID, 100))
            sampler.sample()
        assert sampler.hottest_density("mid") > sampler.hottest_density("large")

    def test_rows_shape(self):
        system, p = make()
        addr = system.sys_mmap(p, LARGE + MID)
        system.touch(p, addr)
        sampler = AccessBitSampler(p, G)
        sampler.sample()
        rows = sampler.rows(scale_factor=256)
        assert rows
        assert {"region_start", "size_gb", "class", "miss_share", "miss_per_gb"} <= set(
            rows[0]
        )
        assert abs(sum(r["miss_share"] for r in rows) - 1.0) < 1e-9
