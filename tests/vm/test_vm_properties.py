"""Property-based tests for the page table, address space and mappability."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.config import SCALED_GEOMETRY
from repro.vm.addrspace import AddressSpace
from repro.vm.mappability import mappable_bytes, mappable_ranges
from repro.vm.pagetable import MappingConflictError, PageTable

G = SCALED_GEOMETRY
BASE, MID, LARGE = G.base_size, G.mid_size, G.large_size
LVL_BASE, LVL_MID, LVL_LARGE = 0, 1, 2  # geometry level indices
VA0 = 0x7000_0000_0000

page_specs = st.lists(
    st.tuples(st.integers(0, 63), st.sampled_from((LVL_BASE, LVL_MID, LVL_LARGE))),
    min_size=1,
    max_size=40,
)


@given(page_specs)
@settings(max_examples=60)
def test_pagetable_mappings_never_overlap(specs):
    """Whatever map/conflict sequence runs, accepted mappings are disjoint."""
    table = PageTable(G)
    accepted = []
    for slot, size in specs:
        va = VA0 + slot * MID
        va = G.align_down(va, size)
        try:
            table.map_page(va, size, pfn=slot)
            accepted.append((va, G.bytes_for(size)))
        except MappingConflictError:
            continue
    # Disjointness check over accepted intervals.
    accepted.sort()
    for (s1, l1), (s2, _) in zip(accepted, accepted[1:]):
        assert s1 + l1 <= s2
    # Every accepted byte translates to exactly its own mapping.
    for start, length in accepted:
        m = table.translate(start)
        assert m is not None and m.va == start
        assert table.translate(start + length - 1) is m


@given(page_specs)
@settings(max_examples=40)
def test_pagetable_unmap_restores_translation_holes(specs):
    table = PageTable(G)
    live = {}
    for slot, size in specs:
        va = G.align_down(VA0 + slot * MID, size)
        try:
            table.map_page(va, size, pfn=slot)
            live[va] = size
        except MappingConflictError:
            pass
    for va, size in list(live.items()):
        table.unmap(va, size)
        assert table.translate(va) is None
    assert table.mapped_bytes() == 0


@given(
    st.lists(
        st.integers(1, 8 * MID // BASE),  # lengths in pages
        min_size=1,
        max_size=25,
    )
)
@settings(max_examples=60)
def test_mid_mappable_superset_of_large_mappable(lengths):
    """Paper invariant: all 1GB-mappable memory is 2MB-mappable."""
    aspace = AddressSpace(G)
    for pages in lengths:
        aspace.mmap(pages * BASE)
    large = mappable_bytes(aspace, LVL_LARGE)
    mid = mappable_bytes(aspace, LVL_MID)
    assert large <= mid <= aspace.mapped_bytes
    assert large % LARGE == 0
    assert mid % MID == 0


@given(
    st.lists(st.tuples(st.integers(1, 64), st.booleans()), min_size=1, max_size=30),
    st.integers(0, 2**16),
)
@settings(max_examples=40)
def test_addrspace_mmap_munmap_roundtrip(ops, seed):
    import random

    rng = random.Random(seed)
    aspace = AddressSpace(G)
    live = []
    expected = 0
    for pages, do_free in ops:
        vma = aspace.mmap(pages * BASE)
        live.append(vma.start)
        expected += pages * BASE
        if do_free and live:
            start = live.pop(rng.randrange(len(live)))
            removed = aspace.munmap(start)
            expected -= removed.length
        assert aspace.mapped_bytes == expected
    # All live VMAs are disjoint.
    vmas = aspace.iter_vmas()
    for a, b in zip(vmas, vmas[1:]):
        assert a.end <= b.start


@given(st.lists(st.integers(1, 100), min_size=1, max_size=20))
@settings(max_examples=40)
def test_extents_cover_exactly_the_vmas(lengths):
    aspace = AddressSpace(G)
    for pages in lengths:
        aspace.mmap(pages * BASE)
    total_extent = sum(e.length for e in aspace.iter_extents())
    assert total_extent == aspace.mapped_bytes
    # Extents are disjoint, ordered, and non-adjacent (else they'd merge).
    extents = aspace.iter_extents()
    for a, b in zip(extents, extents[1:]):
        assert a.end < b.start or a.name != b.name


@given(st.integers(0, 40), st.sampled_from((LVL_BASE, LVL_MID, LVL_LARGE)))
def test_mappable_ranges_are_aligned_and_inside(pages, size):
    aspace = AddressSpace(G)
    if pages == 0:
        return
    vma = aspace.mmap(pages * BASE)
    for start, end in mappable_ranges(vma, size, G):
        assert start % G.bytes_for(size) == 0
        assert end - start == G.bytes_for(size)
        assert vma.start <= start and end <= vma.end
