"""Tests for the VMA / mmap allocator."""

import pytest

from repro.config import SCALED_GEOMETRY
from repro.vm.addrspace import VMA, AddressSpace

G = SCALED_GEOMETRY
PAGE = G.base_size


def make():
    return AddressSpace(G)


class TestVMA:
    def test_length_and_contains(self):
        v = VMA(0x1000, 0x3000)
        assert v.length == 0x2000
        assert v.contains(0x1000)
        assert v.contains(0x2FFF)
        assert not v.contains(0x3000)

    def test_bad_range_rejected(self):
        with pytest.raises(ValueError):
            VMA(0x2000, 0x2000)
        with pytest.raises(ValueError):
            VMA(-1, 0x1000)


class TestMmap:
    def test_mmap_is_page_aligned(self):
        a = make()
        v = a.mmap(5 * PAGE)
        assert v.start % PAGE == 0
        assert v.length == 5 * PAGE

    def test_mmap_rounds_length_up(self):
        a = make()
        v = a.mmap(PAGE + 1)
        assert v.length == 2 * PAGE

    def test_sequential_mmaps_are_disjoint(self):
        a = make()
        v1 = a.mmap(4 * PAGE)
        v2 = a.mmap(4 * PAGE)
        assert v1.end <= v2.start or v2.end <= v1.start

    def test_mmap_respects_alignment(self):
        a = make()
        a.mmap(3 * PAGE)  # misalign the top pointer
        v = a.mmap(G.large_size, align=G.large_size)
        assert v.start % G.large_size == 0

    def test_mmap_zero_length_rejected(self):
        a = make()
        with pytest.raises(ValueError):
            a.mmap(0)

    def test_mmap_bad_align_rejected(self):
        a = make()
        with pytest.raises(ValueError):
            a.mmap(PAGE, align=100)

    def test_fixed_mapping(self):
        a = make()
        base = AddressSpace.MMAP_BASE + 10 * G.large_size
        v = a.mmap(2 * PAGE, fixed_at=base)
        assert v.start == base

    def test_fixed_overlap_rejected(self):
        a = make()
        v = a.mmap(4 * PAGE)
        with pytest.raises(ValueError):
            a.mmap(PAGE, fixed_at=v.start)

    def test_mapped_bytes_accumulates(self):
        a = make()
        a.mmap(4 * PAGE)
        a.mmap(8 * PAGE)
        assert a.mapped_bytes == 12 * PAGE


class TestMunmapAndReuse:
    def test_munmap_removes_vma(self):
        a = make()
        v = a.mmap(4 * PAGE)
        a.munmap(v.start)
        assert a.find_vma(v.start) is None
        assert a.mapped_bytes == 0

    def test_munmap_unknown_rejected(self):
        a = make()
        with pytest.raises(ValueError):
            a.munmap(0xDEAD000)

    def test_partial_munmap_rejected(self):
        a = make()
        v = a.mmap(4 * PAGE)
        with pytest.raises(ValueError):
            a.munmap(v.start, 2 * PAGE)

    def test_hole_is_reused_first_fit(self):
        a = make()
        v1 = a.mmap(4 * PAGE)
        a.mmap(4 * PAGE)  # keeps the hole from merging with the top
        a.munmap(v1.start)
        v3 = a.mmap(2 * PAGE)
        assert v3.start == v1.start

    def test_too_big_for_hole_goes_to_top(self):
        a = make()
        v1 = a.mmap(2 * PAGE)
        v2 = a.mmap(2 * PAGE)
        a.munmap(v1.start)
        v3 = a.mmap(4 * PAGE)
        assert v3.start >= v2.end

    def test_adjacent_holes_merge(self):
        a = make()
        v1 = a.mmap(2 * PAGE)
        v2 = a.mmap(2 * PAGE)
        a.mmap(PAGE)
        a.munmap(v1.start)
        a.munmap(v2.start)
        v4 = a.mmap(4 * PAGE)
        assert v4.start == v1.start


class TestFindVMA:
    def test_find_hits_and_misses(self):
        a = make()
        v = a.mmap(4 * PAGE)
        assert a.find_vma(v.start) is v
        assert a.find_vma(v.end - 1) is v
        assert a.find_vma(v.end) is None
        assert a.find_vma(v.start - 1) is None

    def test_iter_vmas_in_address_order(self):
        a = make()
        vs = [a.mmap(PAGE) for _ in range(5)]
        order = a.iter_vmas()
        assert [v.start for v in order] == sorted(v.start for v in vs)
