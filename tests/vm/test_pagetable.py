"""Tests for the three-leaf-size page table."""

import pytest

from repro.config import SCALED_GEOMETRY
from repro.vm.pagetable import MappingConflictError, PageTable

G = SCALED_GEOMETRY
BASE, MID, LARGE = G.base_size, G.mid_size, G.large_size
LVL_BASE, LVL_MID, LVL_LARGE = 0, 1, 2  # geometry level indices
VA0 = 0x7000_0000_0000


def make():
    return PageTable(G)


class TestMapTranslate:
    @pytest.mark.parametrize("size", (LVL_BASE, LVL_MID, LVL_LARGE))
    def test_map_and_translate_each_size(self, size):
        t = make()
        m = t.map_page(VA0, size, pfn=42)
        hit = t.translate(VA0)
        assert hit is m
        assert hit.pfn == 42
        assert hit.page_size == size
        # Last byte of the page still translates; next byte does not.
        assert t.translate(VA0 + G.bytes_for(size) - 1) is m
        assert t.translate(VA0 + G.bytes_for(size)) is None

    def test_misaligned_map_rejected(self):
        t = make()
        with pytest.raises(ValueError):
            t.map_page(VA0 + BASE, LVL_MID, pfn=0)

    def test_translate_unmapped_is_none(self):
        assert make().translate(VA0) is None

    def test_is_mapped(self):
        t = make()
        t.map_page(VA0, LVL_BASE, 1)
        assert t.is_mapped(VA0)
        assert not t.is_mapped(VA0 + BASE)


class TestConflicts:
    def test_double_map_same_size_rejected(self):
        t = make()
        t.map_page(VA0, LVL_BASE, 1)
        with pytest.raises(MappingConflictError):
            t.map_page(VA0, LVL_BASE, 2)

    def test_large_over_base_rejected(self):
        t = make()
        t.map_page(VA0 + 3 * BASE, LVL_BASE, 1)
        with pytest.raises(MappingConflictError):
            t.map_page(VA0, LVL_LARGE, 2)

    def test_base_under_large_rejected(self):
        t = make()
        t.map_page(VA0, LVL_LARGE, 1)
        with pytest.raises(MappingConflictError):
            t.map_page(VA0 + 5 * BASE, LVL_BASE, 2)

    def test_mid_under_large_rejected(self):
        t = make()
        t.map_page(VA0, LVL_LARGE, 1)
        with pytest.raises(MappingConflictError):
            t.map_page(VA0 + MID, LVL_MID, 2)

    def test_mid_over_base_rejected(self):
        t = make()
        t.map_page(VA0 + BASE, LVL_BASE, 1)
        with pytest.raises(MappingConflictError):
            t.map_page(VA0, LVL_MID, 2)

    def test_disjoint_sizes_coexist(self):
        t = make()
        t.map_page(VA0, LVL_LARGE, 1)
        t.map_page(VA0 + LARGE, LVL_MID, 2)
        t.map_page(VA0 + LARGE + MID, LVL_BASE, 3)
        assert t.count(LVL_LARGE) == 1
        assert t.count(LVL_MID) == 1
        assert t.count(LVL_BASE) == 1

    def test_conflict_cleared_after_unmap(self):
        t = make()
        t.map_page(VA0 + MID, LVL_BASE, 1)
        t.unmap(VA0 + MID, LVL_BASE)
        t.map_page(VA0, LVL_LARGE, 2)  # now legal
        assert t.translate(VA0).page_size == LVL_LARGE


class TestUnmap:
    def test_unmap_returns_mapping(self):
        t = make()
        t.map_page(VA0, LVL_MID, 7)
        m = t.unmap(VA0, LVL_MID)
        assert m.pfn == 7
        assert t.translate(VA0) is None

    def test_unmap_missing_rejected(self):
        t = make()
        with pytest.raises(ValueError):
            t.unmap(VA0, LVL_BASE)

    def test_unmap_range_removes_all_sizes(self):
        t = make()
        t.map_page(VA0, LVL_LARGE, 1)
        t.map_page(VA0 + LARGE, LVL_MID, 2)
        t.map_page(VA0 + LARGE + MID, LVL_BASE, 3)
        removed = t.unmap_range(VA0, 2 * LARGE)
        assert len(removed) == 3
        assert t.mapped_bytes() == 0

    def test_unmap_range_straddle_rejected(self):
        t = make()
        t.map_page(VA0, LVL_MID, 1)
        with pytest.raises(ValueError):
            t.unmap_range(VA0 + BASE, MID)

    def test_unmap_range_only_within(self):
        t = make()
        t.map_page(VA0, LVL_BASE, 1)
        t.map_page(VA0 + BASE, LVL_BASE, 2)
        removed = t.unmap_range(VA0, BASE)
        assert [m.pfn for m in removed] == [1]
        assert t.is_mapped(VA0 + BASE)


class TestAccounting:
    def test_mapped_bytes_by_size(self):
        t = make()
        t.map_page(VA0, LVL_LARGE, 1)
        t.map_page(VA0 + LARGE, LVL_MID, 2)
        assert t.mapped_bytes(LVL_LARGE) == LARGE
        assert t.mapped_bytes(LVL_MID) == MID
        assert t.mapped_bytes() == LARGE + MID

    def test_mappings_in_range(self):
        t = make()
        for i in range(4):
            t.map_page(VA0 + i * MID, LVL_MID, i)
        found = t.mappings_in_range(VA0 + MID, 2 * MID, LVL_MID)
        assert [m.pfn for m in found] == [1, 2]

    def test_access_bits_clear_and_collect(self):
        t = make()
        m1 = t.map_page(VA0, LVL_BASE, 1)
        m2 = t.map_page(VA0 + BASE, LVL_BASE, 2)
        m1.accessed = True
        assert t.accessed_mappings() == [m1]
        t.clear_access_bits()
        assert t.accessed_mappings() == []
        assert not m2.accessed
