"""Tests for mappability analysis and fault-candidate selection."""

from repro.config import SCALED_GEOMETRY
from repro.vm.addrspace import VMA, AddressSpace
from repro.vm.fault import candidate_page_sizes, region_fits_vma
from repro.vm.mappability import (
    MappabilityScanner,
    classify_regions,
    mappable_bytes,
    mappable_ranges,
)
from repro.vm.pagetable import PageTable

G = SCALED_GEOMETRY
BASE, MID, LARGE = G.base_size, G.mid_size, G.large_size
LVL_BASE, LVL_MID, LVL_LARGE = 0, 1, 2  # geometry level indices


class TestMappableRanges:
    def test_aligned_vma_fully_large_mappable(self):
        vma = VMA(LARGE, 3 * LARGE)
        ranges = list(mappable_ranges(vma, LVL_LARGE, G))
        assert ranges == [(LARGE, 2 * LARGE), (2 * LARGE, 3 * LARGE)]

    def test_misaligned_vma_loses_edges(self):
        vma = VMA(LARGE + MID, 3 * LARGE + MID)
        ranges = list(mappable_ranges(vma, LVL_LARGE, G))
        assert ranges == [(2 * LARGE, 3 * LARGE)]

    def test_short_vma_not_large_mappable_but_mid(self):
        vma = VMA(LARGE, LARGE + 4 * MID)
        assert list(mappable_ranges(vma, LVL_LARGE, G)) == []
        assert len(list(mappable_ranges(vma, LVL_MID, G))) == 4


class TestMappableBytes:
    def test_every_large_range_is_mid_mappable(self):
        a = AddressSpace(G)
        a.mmap(3 * LARGE + 5 * MID + 3 * BASE)
        a.mmap(7 * MID)
        large = mappable_bytes(a, LVL_LARGE)
        mid = mappable_bytes(a, LVL_MID)
        assert mid >= large
        assert large % LARGE == 0
        assert mid % MID == 0

    def test_incremental_allocation_shrinks_large_mappability(self):
        # One big mmap vs the same memory in small non-aligned pieces.
        pre = AddressSpace(G)
        pre.mmap(4 * LARGE, align=LARGE)
        inc = AddressSpace(G)
        for _ in range(4 * LARGE // (3 * BASE)):
            inc.mmap(3 * BASE)
        assert mappable_bytes(pre, LVL_LARGE) == 4 * LARGE
        # Contiguous small mmaps may merge into mappable spans, but first-fit
        # with odd sizes keeps alignment poor; mid mappability survives.
        assert mappable_bytes(inc, LVL_LARGE) <= mappable_bytes(
            inc, LVL_MID
        )

    def test_empty_space_is_zero(self):
        a = AddressSpace(G)
        assert mappable_bytes(a, LVL_LARGE) == 0
        assert mappable_bytes(a, LVL_MID) == 0


class TestClassifyRegions:
    def test_classes_partition_each_extent(self):
        a = AddressSpace(G)
        a.mmap(2 * LARGE + 3 * MID + BASE)
        a.mmap(5 * BASE, name="stack")
        regions = classify_regions(a, G)
        by_extent = {}
        for start, end, cls in regions:
            assert end > start
            extent = a.extent_of(start)
            assert extent is not None
            by_extent.setdefault(extent.start, 0)
            by_extent[extent.start] += end - start
        for extent in a.iter_extents():
            assert by_extent[extent.start] == extent.length

    def test_class_labels(self):
        a = AddressSpace(G)
        a.mmap(LARGE + MID + BASE, align=LARGE)
        classes = {cls for _, _, cls in classify_regions(a, G)}
        assert classes == {"large", "mid", "base"}

    def test_scanner_collects_samples(self):
        a = AddressSpace(G)
        scanner = MappabilityScanner(a)
        a.mmap(2 * LARGE, align=LARGE)
        scanner.sample("t0")
        a.mmap(3 * MID)
        scanner.sample("t1")
        assert len(scanner.samples) == 2
        label, large, mid = scanner.samples[1]
        assert label == "t1"
        assert mid >= large


class TestFaultCandidates:
    def test_aligned_interior_offers_all_sizes(self):
        a = AddressSpace(G)
        vma = a.mmap(2 * LARGE, align=LARGE)
        t = PageTable(G)
        sizes = candidate_page_sizes(vma.start, vma, t, G)
        assert sizes == [LVL_LARGE, LVL_MID, LVL_BASE]

    def test_small_vma_offers_only_smaller_sizes(self):
        a = AddressSpace(G)
        vma = a.mmap(2 * MID, align=MID)
        t = PageTable(G)
        sizes = candidate_page_sizes(vma.start, vma, t, G)
        assert sizes == [LVL_MID, LVL_BASE]

    def test_existing_mapping_blocks_larger_size(self):
        a = AddressSpace(G)
        vma = a.mmap(2 * LARGE, align=LARGE)
        t = PageTable(G)
        t.map_page(vma.start, LVL_BASE, 0)
        sizes = candidate_page_sizes(vma.start + BASE, vma, t, G)
        assert LVL_LARGE not in sizes
        assert LVL_MID not in sizes  # same mid slot as the base page
        assert sizes == [LVL_BASE]

    def test_mapping_in_other_mid_slot_blocks_only_large(self):
        a = AddressSpace(G)
        vma = a.mmap(2 * LARGE, align=LARGE)
        t = PageTable(G)
        t.map_page(vma.start, LVL_BASE, 0)
        sizes = candidate_page_sizes(vma.start + MID, vma, t, G)
        assert sizes == [LVL_MID, LVL_BASE]

    def test_region_fits_vma_edges(self):
        vma = VMA(LARGE, 2 * LARGE)
        assert region_fits_vma(LARGE, LVL_LARGE, vma, G)
        assert region_fits_vma(2 * LARGE - 1, LVL_LARGE, vma, G)
        off_vma = VMA(LARGE + BASE, 2 * LARGE)
        assert not region_fits_vma(LARGE + BASE, LVL_LARGE, off_vma, G)
