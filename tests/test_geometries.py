"""Geometry presets, random N-level geometries, and the PageSize shim.

The N-level :class:`~repro.config.PageGeometry` redesign claims that no
derived quantity depends on there being exactly three tiers.  These tests
pin that down three ways: the built-in presets boot and run end-to-end,
randomly generated valid geometries satisfy the arithmetic invariants the
rest of the simulator leans on, and the deprecated ``PageSize`` aliases
resolve against the active geometry while warning once per call site
(mirroring the ``TouchResult`` shim, lint rule TRD003).
"""

import warnings

import hypothesis.strategies as st
import numpy as np
import pytest
from hypothesis import given, settings

from repro.config import (
    SCALED_GEOMETRY,
    PageGeometry,
    PageLevel,
    PageSize,
    TLBConfig,
    TLBSection,
    default_machine,
    set_active_geometry,
)
from repro.geometries import (
    GEOMETRY_PRESETS,
    geometry_from_dict,
    resolve_geometry,
)
from repro.mem.buddy import BuddyAllocator


@st.composite
def geometries(draw):
    """A random valid N-level geometry (2..5 levels, embedded TLB specs)."""
    n = draw(st.integers(2, 5))
    base_shift = draw(st.integers(12, 14))
    orders = [0]
    for _ in range(n - 1):
        orders.append(orders[-1] + draw(st.integers(1, 4)))
    levels = tuple(
        PageLevel(
            name=f"l{i}",
            label=f"L{i}",
            order=order,
            promotable=i > 0,
            thp_target=(i == 1),
            tlb=TLBSection(TLBConfig(8, 4), "shared"),
            levels_skipped=draw(st.integers(0, min(i, 3))),
            leaf_cached_prob=(
                draw(st.floats(0.0, 1.0)) if i else 0.0
            ),
        )
        for i, order in enumerate(orders)
    )
    return PageGeometry(
        base_shift=base_shift,
        levels=levels,
        l2_groups=(("shared", TLBConfig(64, 4)),),
        name="random",
    )


class TestGeometryProperties:
    """Arithmetic invariants over random valid geometries."""

    @given(geometries())
    def test_shifts_and_sizes_strictly_increase(self, g):
        shifts = [g.shift_for(level) for level in g.all_levels]
        assert shifts == sorted(set(shifts))
        sizes = [g.bytes_for(level) for level in g.all_levels]
        assert sizes == sorted(set(sizes))
        assert g.order_for(0) == 0
        assert g.bytes_for(0) == g.base_size == 1 << g.base_shift

    @given(geometries())
    def test_frames_match_orders(self, g):
        for level in g.all_levels:
            assert g.frames_for(level) == 1 << g.order_for(level)
            assert g.bytes_for(level) == g.frames_for(level) * g.base_size
            assert g.shift_for(level) == g.base_shift + g.order_for(level)

    @given(geometries(), st.integers(0, (1 << 40) - 1))
    def test_alignment_invariants(self, g, addr):
        for level in g.all_levels:
            size = g.bytes_for(level)
            down = g.align_down(addr, level)
            up = g.align_up(addr, level)
            assert down % size == 0 and up % size == 0
            assert down <= addr < down + size
            assert up == (down if addr == down else down + size)
            assert g.align_down(down, level) == down
            assert g.align_up(down, level) == down

    @given(geometries())
    def test_level_orderings(self, g):
        assert g.all_levels == tuple(range(g.n_levels))
        assert g.levels_desc == tuple(reversed(g.all_levels))
        assert g.top_level == g.n_levels - 1
        assert 0 < g.thp_level <= g.top_level
        assert len(set(lvl.name for lvl in g.levels)) == g.n_levels

    @settings(deadline=None)
    @given(geometries())
    def test_buddy_split_coalesce_round_trip(self, g):
        """Alloc/free one block of every level's order restores the pool."""
        top_order = g.order_for(g.top_level)
        total = 2 << top_order
        buddy = BuddyAllocator(total, top_order)
        for level in g.all_levels:
            pfn = buddy.alloc(g.order_for(level))
            assert buddy.free_frames == total - g.frames_for(level)
            buddy.free(pfn)
            assert buddy.free_frames == total
            buddy.check_invariants()
        # Splitting all the way down and back up coalesces to max blocks.
        assert buddy.free_blocks(top_order) == 2


class TestPresets:
    def test_x86_preset_machine_is_the_default_machine(self):
        assert GEOMETRY_PRESETS["x86"].machine(16) == default_machine(16)

    def test_sv_napot_is_four_levels(self):
        g = GEOMETRY_PRESETS["sv-napot"].geometry
        assert g.n_levels == 4
        assert g.labels == ("4KB", "64KB", "2MB", "1GB")
        # NAPOT pages are PTEs: full-depth walks, never structure-cached.
        walk = GEOMETRY_PRESETS["sv-napot"].walk.for_geometry(g)
        assert walk.levels_for(1) == walk.levels_for(0)
        assert walk.leaf_cached_prob(1) == 0.0
        # True superpage levels do shorten the walk.
        assert walk.levels_for(2) < walk.levels_for(0)

    def test_arm16k_granule_shift(self):
        g = GEOMETRY_PRESETS["arm16k"].geometry
        assert g.base_shift == 14
        walk = GEOMETRY_PRESETS["arm16k"].walk.for_geometry(g)
        # Contiguous-bit entries never shorten a walk; blocks do.
        assert walk.levels_for(1) == walk.levels_for(0)
        assert walk.levels_for(2) < walk.levels_for(0)

    @pytest.mark.parametrize("key", sorted(GEOMETRY_PRESETS))
    def test_preset_runs_end_to_end(self, key):
        from repro.core.trident import TridentPolicy
        from repro.sim.system import System

        preset = GEOMETRY_PRESETS[key]
        machine = preset.machine(16)
        system = System(machine, TridentPolicy, seed=5)
        process = system.create_process("smoke")
        va = system.sys_mmap(process, 4 << 20)
        rng = np.random.default_rng(42)
        addrs = (va + rng.integers(0, 4 << 20, size=5000)).astype(np.int64)
        result = system.touch_batch(process, addrs)
        g = machine.geometry
        assert set(result.walks_by_size) == set(g.all_levels)
        assert process.tlb.n_levels == g.n_levels
        assert result.accesses == 5000
        system.run_daemons(2_000_000)
        assert sum(
            process.pagetable.mapped_bytes(s) for s in g.all_levels
        ) == 4 << 20

    def test_resolve_geometry_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown geometry"):
            resolve_geometry("no-such-geometry")

    def test_repeat_runs_are_deterministic(self):
        from repro.core.trident import TridentPolicy
        from repro.sim.bench import state_fingerprint
        from repro.sim.system import System

        def run():
            preset = GEOMETRY_PRESETS["sv-napot"]
            system = System(preset.machine(16), TridentPolicy, seed=5)
            process = system.create_process("det")
            va = system.sys_mmap(process, 4 << 20)
            rng = np.random.default_rng(7)
            addrs = (va + rng.integers(0, 4 << 20, size=8000)).astype(np.int64)
            system.touch_batch(process, addrs)
            return state_fingerprint(system, process)

        assert run() == run()


class TestGeometryFromDict:
    SPEC = {
        "name": "toy",
        "base_shift": 12,
        "levels": [
            {"name": "base", "order": 0, "l1": {"entries": 16, "ways": 4}},
            {"name": "big", "order": 4, "l1": {"entries": 4, "ways": 4},
             "l2": "shared", "thp_target": True},
        ],
        "l2_groups": {"shared": {"entries": 64, "ways": 8}},
    }

    def test_valid_spec_loads(self):
        preset = geometry_from_dict(self.SPEC)
        g = preset.geometry
        assert g.n_levels == 2
        assert g.bytes_for(1) == 1 << 16
        assert g.thp_level == 1

    @pytest.mark.parametrize(
        "mutate, match",
        [
            (lambda s: s.pop("levels"), "missing 'levels'"),
            (lambda s: s.pop("base_shift"), "missing 'base_shift'"),
            (lambda s: s.update(levels=[s["levels"][0]]), "at least two"),
            (lambda s: s["levels"][1].pop("order"), "missing 'order'"),
        ],
    )
    def test_schema_violations_raise(self, mutate, match):
        import copy

        spec = copy.deepcopy(self.SPEC)
        mutate(spec)
        with pytest.raises(ValueError, match=match):
            geometry_from_dict(spec)


class TestPageSizeDeprecationShim:
    """PageSize aliases warn once per call site and track the live geometry."""

    def setup_method(self):
        PageSize.reset_warned_sites()
        set_active_geometry(SCALED_GEOMETRY)

    def teardown_method(self):
        PageSize.reset_warned_sites()
        set_active_geometry(SCALED_GEOMETRY)

    def test_warns_once_per_call_site_not_per_read(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            for _ in range(100):
                assert PageSize.MID == 1  # one call site, read 100 times
        assert len(caught) == 1
        assert issubclass(caught[0].category, DeprecationWarning)
        assert "PageSize.MID is deprecated" in str(caught[0].message)
        assert "TRD003" in str(caught[0].message)

    def test_distinct_call_sites_each_warn(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            _ = PageSize.BASE  # site 1
            _ = PageSize.LARGE  # site 2
        assert len(caught) == 2

    def test_warning_attributed_to_caller(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            _ = PageSize.ALL
        assert caught[0].filename == __file__

    def test_aliases_resolve_against_active_geometry(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            assert (PageSize.BASE, PageSize.MID, PageSize.LARGE) == (0, 1, 2)
            assert PageSize.ALL == (0, 1, 2)
            assert PageSize.X86_NAMES == {0: "4KB", 1: "2MB", 2: "1GB"}
            set_active_geometry(GEOMETRY_PRESETS["sv-napot"].geometry)
            assert PageSize.LARGE == 3
            assert PageSize.ALL == (0, 1, 2, 3)
            assert PageSize.NAMES[1] == "napot"

    def test_system_boot_sets_active_geometry(self):
        from repro.core.baseline4k import Baseline4KPolicy
        from repro.sim.system import System

        preset = GEOMETRY_PRESETS["arm16k"]
        System(preset.machine(4), Baseline4KPolicy, seed=1)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            assert PageSize.ALL == (0, 1, 2)
            assert PageSize.X86_NAMES[0] == "16KB"
