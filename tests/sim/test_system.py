"""Tests for the System orchestration layer and the performance model."""

import numpy as np
import pytest

from repro.config import default_machine
from repro.core.thp import THPPolicy
from repro.core.trident import TridentPolicy
from repro.sim.perfmodel import PerfModel, RunMetrics
from repro.sim.system import System

MACHINE = default_machine(16)
G = MACHINE.geometry
BASE, MID, LARGE = G.base_size, G.mid_size, G.large_size
LVL_BASE, LVL_MID, LVL_LARGE = 0, 1, 2  # geometry level indices


def make(policy=TridentPolicy, regions=16, **kw):
    system = System(default_machine(regions), policy, seed=5, **kw)
    return system, system.create_process("t")


class TestSystem:
    def test_boot_reserves_kernel_memory(self):
        system, _ = make()
        assert system.buddy.used_frames > 0
        assert (system.regions.unmovable_frames > 0).any()

    def test_touch_faults_once_per_page(self):
        system, p = make(policy=THPPolicy)
        addr = system.sys_mmap(p, 2 * MID)
        system.touch(p, addr)
        system.touch(p, addr + 1)
        system.touch(p, addr + MID)
        assert p.faults == 2  # two mid pages, one fault each

    def test_touch_batch_accepts_numpy(self):
        system, p = make()
        addr = system.sys_mmap(p, MID)
        vas = addr + np.arange(0, MID, BASE)
        system.touch_batch(p, vas)
        assert p.tlb.stats.accesses == len(vas)

    def test_touched_pages_tracked(self):
        system, p = make()
        addr = system.sys_mmap(p, MID)
        system.touch(p, addr)
        system.touch(p, addr + BASE)
        assert p.touched_base_pages_in(addr, MID) == 2
        assert p.touched_base_vas_in(addr, 2 * BASE) == [addr, addr + BASE]

    def test_daemons_run_on_access_cadence(self):
        system, p = make(daemon_period_accesses=50)
        addr = system.sys_mmap(p, MID)
        for i in range(120):
            system.touch(p, addr + (i % 16) * BASE)
        assert system.daemon_ns_total > 0

    def test_fragment_then_fmfi(self):
        system, _ = make(regions=24)
        index = system.fragment()
        assert index > 0.8
        assert system.fmfi > 0.8

    def test_reclaim_unregisters_rmap(self):
        system, _ = make(regions=24)
        system.fragment(residual_fraction=0.5)
        rmap_before = len(system.rmap)
        freed = system.reclaim(50)
        assert freed >= 50
        assert len(system.rmap) <= rmap_before - 50

    def test_settle_until_quiet_terminates(self):
        system, p = make()
        for _ in range(G.mids_per_large):
            a = system.sys_mmap(p, MID)
            system.touch(p, a)
        ticks = system.settle_until_quiet(max_ticks=200, budget_ns=1e9)
        assert ticks < 200

    def test_mapped_bytes_by_size(self):
        system, p = make()
        addr = system.sys_mmap(p, LARGE)
        system.touch(p, addr)
        by_size = system.mapped_bytes_by_size(p)
        assert by_size[LVL_LARGE] == LARGE


class TestPerfModel:
    def make_metrics(self, **overrides):
        defaults = dict(
            policy="x",
            workload="w",
            accesses=10_000,
            translation_cycles=50_000.0,
            walk_cycles=40_000.0,
            walks=500,
            fault_ns=1e6,
            daemon_ns=2e6,
            represented_accesses=1_000_000,
            cpi_base=100.0,
        )
        defaults.update(overrides)
        return RunMetrics(**defaults)

    def test_runtime_composition(self):
        m = self.make_metrics()
        compute_ns = 1_000_000 * (100.0 + 5.0) / 2.3
        assert m.runtime_ns == pytest.approx(compute_ns + 1e6 + 0.1 * 2e6)

    def test_fault_parallelism_divides_fault_time(self):
        serial = self.make_metrics(fault_parallelism=1)
        parallel = self.make_metrics(fault_parallelism=36)
        assert parallel.runtime_ns < serial.runtime_ns
        assert parallel.effective_fault_ns == pytest.approx(1e6 / 36)

    def test_walk_exposure_discounts_translation_only(self):
        full = self.make_metrics(walk_exposure=1.0)
        half = self.make_metrics(walk_exposure=0.5)
        assert half.runtime_ns < full.runtime_ns
        # The counter-style walk fraction is not exposure-discounted.
        assert half.walk_cycle_fraction == pytest.approx(full.walk_cycle_fraction)

    def test_walk_fraction_bounded(self):
        m = self.make_metrics(
            translation_cycles=10_000_000.0, walk_cycles=9_000_000.0
        )
        assert 0.0 < m.walk_cycle_fraction < 1.0

    def test_speedup_is_inverse_runtime_ratio(self):
        fast = self.make_metrics(translation_cycles=0.0, walk_cycles=0.0)
        slow = self.make_metrics()
        assert fast.speedup_over(slow) > 1.0
        assert slow.speedup_over(fast) < 1.0
        assert fast.speedup_over(fast) == pytest.approx(1.0)

    def test_percentiles(self):
        m = self.make_metrics()
        m.request_latencies_ns = list(float(x) for x in range(1, 101))
        assert m.percentile_latency_ns(50) == pytest.approx(50.0, abs=1.0)
        assert m.percentile_latency_ns(99) == pytest.approx(99.0, abs=1.0)
        empty = self.make_metrics()
        assert empty.percentile_latency_ns(99) == 0.0

    def test_collect_pulls_system_counters(self):
        system, p = make()
        addr = system.sys_mmap(p, MID)
        system.touch(p, addr)
        model = PerfModel(cpi_base=50.0, represented_accesses=1000)
        m = model.collect(system, p, "w")
        assert m.accesses == 1
        assert m.fault_ns > 0
        assert m.mapped_bytes_by_size[LVL_MID] == MID

    def test_validation(self):
        with pytest.raises(ValueError):
            PerfModel(cpi_base=0, represented_accesses=10)
        with pytest.raises(ValueError):
            PerfModel(cpi_base=1, represented_accesses=0)
