"""Single-node NUMA machine is counter-for-counter the flat machine.

The zero-cost contract from ``repro.mem.numa``: constructing a System
with ``NumaTopology(nodes=1, remote_multiplier=1.0)`` must leave the
simulation *bitwise* where the flat allocator leaves it — the same pfn
sequence out of the buddy layer, hence the same promotion decisions, the
same simulated clock, the same TLB set orderings and walk histograms,
the same FMFI gauges.  :func:`repro.sim.bench.state_fingerprint` plus a
full registry snapshot pin all of it, across every policy.

The companion direction: with more than one node the penalty model must
actually engage — a remote-home process pays walk and data penalties on
the clock, and page-table replication trades them away.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import default_machine
from repro.core import Baseline4KPolicy, HawkEyePolicy, THPPolicy, TridentPolicy
from repro.mem.numa import NumaTopology
from repro.sim.bench import state_fingerprint
from repro.sim.system import System
from repro.workloads.access import zipf

FOOTPRINT = 8 * 1024 * 1024
POLICIES = [TridentPolicy, THPPolicy, Baseline4KPolicy, HawkEyePolicy]


def _run(policy, numa=None, pt_replication=False, home_node=0, n=30_000):
    system = System(
        default_machine(16),
        policy,
        seed=5,
        numa=numa,
        pt_replication=pt_replication,
    )
    system.daemon_period_accesses = 5_000  # force promotions mid-stream
    kwargs = {"home_node": home_node} if numa is not None else {}
    process = system.create_process(**kwargs)
    base = system.sys_mmap(process, FOOTPRINT)
    rng = np.random.default_rng(42)
    stream = zipf(rng, base, FOOTPRINT, n)
    system.touch_batch(process, stream)
    system.run_daemons()
    return system, process


@pytest.mark.parametrize("policy", POLICIES)
def test_single_node_bitwise_equal_to_flat(policy):
    flat_sys, flat_proc = _run(policy)
    numa_sys, numa_proc = _run(
        policy, numa=NumaTopology(nodes=1, remote_multiplier=1.0)
    )
    flat_fp = state_fingerprint(flat_sys, flat_proc)
    numa_fp = state_fingerprint(numa_sys, numa_proc)
    mismatched = [k for k in flat_fp if flat_fp[k] != numa_fp[k]]
    assert not mismatched, f"nodes=1 facade diverged on: {mismatched}"
    # The registries agree byte for byte: clock, TLB histograms, buddy
    # gauges, FMFI — and no numa_* metric ever materialized.
    flat_sys.obs.metrics.collect()
    numa_sys.obs.metrics.collect()
    assert flat_sys.obs.metrics.snapshot() == numa_sys.obs.metrics.snapshot()
    assert flat_sys.fmfi == numa_sys.fmfi


def test_single_node_default_multiplier_is_still_bitwise():
    """The multiplier is irrelevant at one node: no access is remote."""
    a_sys, a_proc = _run(TridentPolicy, numa=NumaTopology(nodes=1))
    b_sys, b_proc = _run(
        TridentPolicy, numa=NumaTopology(nodes=1, remote_multiplier=3.0)
    )
    assert state_fingerprint(a_sys, a_proc) == state_fingerprint(
        b_sys, b_proc
    )


class TestMultiNodeEngages:
    def test_remote_home_pays_on_the_clock(self):
        numa = NumaTopology(nodes=2, remote_multiplier=1.5)
        flat_sys, _ = _run(TridentPolicy)
        # home_node=1 while page tables sit on node 0: every walk and a
        # fraction of data accesses cross the interconnect.
        numa_sys, numa_proc = _run(TridentPolicy, numa=numa, home_node=1)
        assert numa_sys.clock.now_ns > flat_sys.clock.now_ns
        m = numa_sys.obs.metrics
        assert m.value("numa_remote_walk_penalty_ns_total") > 0
        # Home allocation succeeded, so data stayed local: walks are the
        # only remote traffic (the spill test below covers the data term).
        assert m.value("numa_remote_access_penalty_ns_total") == 0
        assert numa_proc.pagetable.remote_resident_fraction(1) == 0.0

    def test_data_penalty_when_residency_spills_remote(self):
        numa = NumaTopology(nodes=2, remote_multiplier=1.5)
        system = System(
            default_machine(16), TridentPolicy, seed=5, numa=numa
        )
        process = system.create_process(home_node=1)
        # Exhaust the home node so faults must place frames on node 0.
        # Drain the node-1 pool directly: the facade's ``node=`` argument
        # is a preference that would spill and drain node 0 too.
        home_pool = system.buddy.pools[1]
        for order in range(system.geometry.large_order, -1, -1):
            while home_pool.try_alloc(order) is not None:
                pass
        assert system.buddy.node_free_frames(1) == 0
        base = system.sys_mmap(process, FOOTPRINT)
        rng = np.random.default_rng(42)
        system.touch_batch(process, zipf(rng, base, FOOTPRINT, 10_000))
        assert process.pagetable.remote_resident_fraction(1) == 1.0
        m = system.obs.metrics
        assert m.value("numa_remote_access_penalty_ns_total") > 0
        assert m.value("numa_alloc_remote_total") > 0

    def test_replication_trades_walks_for_maintenance(self):
        numa = NumaTopology(nodes=2, remote_multiplier=1.5)
        plain_sys, _ = _run(TridentPolicy, numa=numa, home_node=1)
        repl_sys, _ = _run(
            TridentPolicy, numa=numa, home_node=1, pt_replication=True
        )
        pm, rm = plain_sys.obs.metrics, repl_sys.obs.metrics
        # Replicated tables walk locally: the walk penalty vanishes and
        # the maintenance cost appears instead.
        assert rm.value("numa_remote_walk_penalty_ns_total") == 0
        assert pm.value("numa_remote_walk_penalty_ns_total") > 0
        assert rm.value("numa_replica_updates_total") == repl_sys.faults_handled
        assert pm.value("numa_replica_updates_total") == 0

    def test_local_home_pays_no_walk_penalty(self):
        numa = NumaTopology(nodes=2, remote_multiplier=1.5)
        sys0, _ = _run(TridentPolicy, numa=numa, home_node=0)
        m = sys0.obs.metrics
        # Page tables live on node 0 == home: walks are local.  Data can
        # still spill remote if node 0 fills, but this footprint fits.
        assert m.value("numa_remote_walk_penalty_ns_total") == 0
