"""Multi-process behaviour: scanning fairness, isolation, teardown."""

import numpy as np

from repro.config import default_machine
from repro.core.thp import THPPolicy
from repro.core.trident import TridentPolicy
from repro.sim.system import System

G = default_machine(16).geometry
BASE, MID, LARGE = G.base_size, G.mid_size, G.large_size
LVL_BASE, LVL_MID, LVL_LARGE = 0, 1, 2  # geometry level indices


class TestMultiProcess:
    def test_processes_have_isolated_address_spaces(self):
        system = System(default_machine(24), TridentPolicy, seed=1)
        p1 = system.create_process("a")
        p2 = system.create_process("b")
        a1 = system.sys_mmap(p1, LARGE)
        a2 = system.sys_mmap(p2, LARGE)
        system.touch(p1, a1)
        system.touch(p2, a2)
        m1 = p1.pagetable.translate(a1)
        m2 = p2.pagetable.translate(a2)
        assert m1.pfn != m2.pfn  # distinct physical backing
        assert p2.pagetable.translate(a2) is not None

    def test_khugepaged_scans_all_processes(self):
        system = System(default_machine(32), THPPolicy, seed=2)
        procs = [system.create_process(f"p{i}") for i in range(3)]
        for p in procs:
            for _ in range(G.frames_per_mid):
                a = system.sys_mmap(p, BASE)
                system.touch(p, a)
        system.settle_until_quiet(budget_ns=1e9)
        for p in procs:
            assert p.pagetable.count(LVL_MID) >= 1, p.name

    def test_exit_process_returns_all_memory(self):
        system = System(default_machine(24), TridentPolicy, seed=3)
        baseline_used = system.buddy.used_frames
        p = system.create_process("t")
        addr = system.sys_mmap(p, 2 * LARGE)
        rng = np.random.default_rng(0)
        system.touch_batch(p, addr + rng.integers(0, 2 * LARGE, 500))
        assert system.buddy.used_frames > baseline_used
        system.exit_process(p)
        # Zero-fill pool may legitimately hold blocks; release it to compare.
        system.zerofill.release_all()
        assert system.buddy.used_frames == baseline_used
        assert p not in system.processes
        assert len(system.rmap) == 0

    def test_exit_mid_promotion_is_clean(self):
        system = System(default_machine(24), TridentPolicy, seed=4)
        p = system.create_process("t")
        for _ in range(G.mids_per_large):
            a = system.sys_mmap(p, MID)
            system.touch(p, a)
        system.run_daemons(budget_ns=5e8)  # partial promotion progress
        system.exit_process(p)
        system.zerofill.release_all()
        system.buddy.check_invariants()

    def test_two_processes_compete_for_large_pages(self):
        system = System(default_machine(20), TridentPolicy, seed=5)
        p1 = system.create_process("a")
        p2 = system.create_process("b")
        a1 = system.sys_mmap(p1, 8 * LARGE)
        a2 = system.sys_mmap(p2, 8 * LARGE)
        for off in range(0, 8 * LARGE, LARGE):
            system.touch(p1, a1 + off)
            system.touch(p2, a2 + off)
        total_large = p1.pagetable.count(LVL_LARGE) + p2.pagetable.count(
            LVL_LARGE
        )
        # 20 regions minus kernel reserve: both got some, not everything.
        assert total_large <= 20
        assert p1.pagetable.count(LVL_LARGE) >= 1
        assert p2.pagetable.count(LVL_LARGE) >= 1
