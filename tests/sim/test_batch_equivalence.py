"""``touch_batch`` is counter-for-counter identical to the scalar loop.

The batch-first API contract: running a stream through the vectorized
engine must leave the simulation in *exactly* the state the per-access
scalar loop produces — every counter, every TLB set's LRU ordering,
every walk-latency histogram bucket, the simulated clock, and the
page-table accessed bits.  :func:`repro.sim.bench.state_fingerprint`
captures all of it; these tests compare fingerprints across policies,
daemon cadences, and fault-heavy streams.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.config import default_machine
from repro.core import Baseline4KPolicy, HawkEyePolicy, THPPolicy, TridentPolicy
from repro.sim.batch import BatchResult, TouchResult
from repro.sim.bench import state_fingerprint
from repro.sim.system import System
from repro.workloads.access import zipf

BASE, MID, LARGE = 0, 1, 2  # three-tier level indices (x86-shaped test geometry)

FOOTPRINT = 16 * 1024 * 1024


def _run(policy, period: int, batched: bool, n: int = 60_000):
    system = System(default_machine(16), policy, seed=5)
    system.daemon_period_accesses = period
    system.batch_hot_path = batched
    process = system.create_process()
    base = system.sys_mmap(process, FOOTPRINT)
    rng = np.random.default_rng(42)
    stream = zipf(rng, base, FOOTPRINT, n)
    result = system.touch_batch(process, stream)
    return state_fingerprint(system, process), result


def assert_fingerprints_equal(batch_fp, scalar_fp) -> None:
    assert batch_fp.keys() == scalar_fp.keys()
    mismatched = [k for k in batch_fp if batch_fp[k] != scalar_fp[k]]
    assert not mismatched, f"batched path diverged on: {mismatched}"


@pytest.mark.parametrize(
    "policy", [TridentPolicy, THPPolicy, Baseline4KPolicy, HawkEyePolicy]
)
def test_cold_stream_equivalence(policy):
    """Cold start: faults, promotions and shootdowns all happen mid-batch."""
    batch_fp, batch_res = _run(policy, period=20_000, batched=True)
    scalar_fp, scalar_res = _run(policy, period=20_000, batched=False)
    assert_fingerprints_equal(batch_fp, scalar_fp)
    assert batch_res == scalar_res


@pytest.mark.parametrize("policy", [TridentPolicy, THPPolicy])
def test_aggressive_daemon_cadence_equivalence(policy):
    """A 333-access daemon period forces many daemon runs inside one batch,
    so promotions (and their TLB shootdowns) repeatedly truncate segments."""
    batch_fp, _ = _run(policy, period=333, batched=True)
    scalar_fp, _ = _run(policy, period=333, batched=False)
    assert_fingerprints_equal(batch_fp, scalar_fp)


def test_batch_result_matches_stats_delta():
    """BatchResult is the delta of the stats the run accumulated."""
    system = System(default_machine(16), TridentPolicy, seed=5)
    process = system.create_process()
    base = system.sys_mmap(process, FOOTPRINT)
    rng = np.random.default_rng(42)
    stream = zipf(rng, base, FOOTPRINT, 20_000)
    first = system.touch_batch(process, stream[:10_000])
    second = system.touch_batch(process, stream[10_000:])
    stats = process.tlb.stats
    assert first.accesses == second.accesses == 10_000
    assert first.accesses + second.accesses == stats.accesses
    assert first.translation_cycles + second.translation_cycles == pytest.approx(
        stats.translation_cycles
    )
    assert first.l1_hits + second.l1_hits == stats.l1_hits
    assert first.walks + second.walks == stats.walks
    assert first.faults + second.faults == process.faults
    for size in (BASE, MID, LARGE):
        assert (
            first.walks_by_size[size] + second.walks_by_size[size]
            == stats.walks_by_size[size]
        )
    assert first.cycles == first.translation_cycles  # TouchResult-style alias


def test_scalar_touch_returns_typed_result():
    """touch() is now a one-access view of the same contract."""
    system = System(default_machine(4), Baseline4KPolicy, seed=1)
    process = system.create_process()
    base = system.sys_mmap(process, 1 << 20)
    first = system.touch(process, base)
    again = system.touch(process, base)
    assert isinstance(first, TouchResult)
    assert first.faulted and not again.faulted
    assert first.page_size == BASE
    # deprecation shim: the result still behaves as the bare cycle count
    # (warning under test in TestTouchResultDeprecationShim)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        assert float(first) == first.cycles
        assert first + 0.0 == first.cycles
    assert isinstance(system.touch_batch(process, [base]), BatchResult)


class TestTouchResultDeprecationShim:
    """Raw-float consumption warns exactly once per call site (TRD005)."""

    def setup_method(self):
        TouchResult.reset_warned_sites()

    def teardown_method(self):
        TouchResult.reset_warned_sites()

    def test_warns_once_per_call_site_not_per_access(self):
        res = TouchResult(5.0)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            for _ in range(100):
                _ = res + 0.0  # one call site, exercised 100 times
        assert len(caught) == 1
        assert issubclass(caught[0].category, DeprecationWarning)
        assert "TouchResult" in str(caught[0].message)
        assert ".cycles" in str(caught[0].message)

    def test_distinct_call_sites_each_warn(self):
        res = TouchResult(5.0)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            _ = float(res)  # site 1
            _ = res * 2.0  # site 2
        assert len(caught) == 2

    def test_warning_attributed_to_caller(self):
        """stacklevel=2 points the warning at the consuming line, not at
        the shim's own frame inside sim/batch.py."""
        res = TouchResult(5.0)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            _ = res - 1.0
        assert caught[0].filename == __file__

    def test_typed_reads_never_warn(self):
        res = TouchResult(7.0, faulted=True, page_size=LARGE)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assert res.cycles == 7.0
            assert res.faulted and res.page_size == LARGE
            repr(res)
            assert res == 7.0  # comparisons stay silent by design
            _ = {res: "hashable"}
        assert caught == []

    def test_reset_allows_site_to_warn_again(self):
        res = TouchResult(5.0)

        def consume():
            return res + 1.0

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            consume()
            consume()
            TouchResult.reset_warned_sites()
            consume()
        assert len(caught) == 2


def test_touch_batch_accepts_plain_lists_and_empty():
    system = System(default_machine(4), Baseline4KPolicy, seed=1)
    process = system.create_process()
    base = system.sys_mmap(process, 1 << 20)
    res = system.touch_batch(process, [base, base + 4096, base])
    assert res.accesses == 3
    empty = system.touch_batch(process, np.empty(0, dtype=np.int64))
    assert empty.accesses == 0 and empty.cycles == 0.0


def test_opt_out_subclass_uses_scalar_loop():
    """batch_hot_path=False (e.g. GuestSystem's EPT backing) must still
    produce the identical BatchResult through the per-access fallback."""
    system = System(default_machine(16), TridentPolicy, seed=5)
    system.batch_hot_path = False
    process = system.create_process()
    base = system.sys_mmap(process, 1 << 22)
    rng = np.random.default_rng(7)
    stream = zipf(rng, base, 1 << 22, 5_000)
    res = system.touch_batch(process, stream)
    assert res.accesses == 5_000
    assert res.accesses == process.tlb.stats.accesses
