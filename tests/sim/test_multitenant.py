"""Sharded multi-tenant runner: determinism, jobs parity, manifests."""

import json
import warnings

import pytest

from repro.sim.multitenant import (
    MultiTenantConfig,
    MultiTenantMachine,
    build_shard_specs,
    run_multi_tenant,
    run_shard,
    shard_id,
    shard_tenants,
)

QUICK = dict(
    tenants=8,
    shards=2,
    rounds=2,
    accesses_per_round=300,
    numa_nodes=2,
    seed=21,
)


@pytest.fixture(autouse=True)
def clean_warn_state():
    """Warn-once state is class-level: isolate it per test (the same
    clean-state contract TouchResult.reset_warned_sites gives TRD005)."""
    MultiTenantMachine.reset_warned()
    yield
    MultiTenantMachine.reset_warned()


def _config(tmp_path, jobs=1, **overrides):
    kwargs = {**QUICK, **overrides}
    return MultiTenantConfig(
        jobs=jobs, out_dir=str(tmp_path / f"ten-j{jobs}"), **kwargs
    )


class TestSharding:
    def test_round_robin_partitions_tenants_exactly(self):
        config = MultiTenantConfig(tenants=10, shards=3)
        owned = [shard_tenants(config, s) for s in range(3)]
        assert sorted(t for ids in owned for t in ids) == list(range(10))
        assert owned[0] == [0, 3, 6, 9]

    def test_shard_ids_and_seeds_stable_and_distinct(self, tmp_path):
        config = _config(tmp_path)
        specs = build_shard_specs(config)
        assert [s.unit_id for s in specs] == [
            shard_id(config, s) for s in range(config.shards)
        ]
        assert len({s.seed for s in specs}) == len(specs)
        assert [s.seed for s in specs] == [
            s.seed for s in build_shard_specs(config)
        ]

    def test_empty_shards_are_skipped(self, tmp_path):
        config = _config(tmp_path, tenants=1, shards=4)
        assert len(build_shard_specs(config)) == 1

    def test_rejects_degenerate_configs(self, tmp_path):
        with pytest.raises(ValueError, match="tenant"):
            run_multi_tenant(_config(tmp_path, tenants=0))
        with pytest.raises(ValueError, match="shard"):
            run_multi_tenant(_config(tmp_path, shards=0))


class TestDeterminism:
    def test_jobs_parity_byte_identical_manifests(self, tmp_path):
        run_multi_tenant(_config(tmp_path, jobs=1))
        run_multi_tenant(_config(tmp_path, jobs=4))
        serial = (tmp_path / "ten-j1" / "tenants_manifest.json").read_text()
        parallel = (tmp_path / "ten-j4" / "tenants_manifest.json").read_text()
        assert serial == parallel

    def test_shard_record_is_a_pure_function_of_its_args(self):
        kwargs = dict(
            shard=0,
            tenant_ids=[0, 2, 4],
            policy="Trident",
            seed=77,
            rounds=2,
            accesses_per_round=200,
            churn_prob=0.5,
            max_segments=4,
            regions_per_tenant=1.5,
            numa_nodes=2,
            numa_remote_multiplier=1.4,
            pt_replication=False,
            audit=False,
        )
        a = json.dumps(run_shard(**kwargs), sort_keys=True)
        b = json.dumps(run_shard(**kwargs), sort_keys=True)
        assert a == b

    def test_seed_actually_changes_the_run(self, tmp_path):
        first = run_multi_tenant(_config(tmp_path, seed=21))
        second = run_multi_tenant(
            _config(tmp_path / "other", seed=22)
        )
        assert first["totals"] != second["totals"]


class TestManifest:
    def test_totals_and_numa_sections(self, tmp_path):
        manifest = run_multi_tenant(_config(tmp_path, audit=True))
        totals = manifest["totals"]
        assert totals["tenants"] == QUICK["tenants"]
        assert totals["accesses"] == (
            QUICK["tenants"] * QUICK["rounds"] * QUICK["accesses_per_round"]
        )
        assert totals["faults"] > 0
        assert totals["audit_checks"] > 0
        assert totals["audit_violations"] == 0
        assert len(totals["mean_node_fmfi"]) == 2
        assert len(totals["node_free_frames"]) == 2
        for record in manifest["shards"]:
            machine = record["machine"]
            assert set(machine["numa_counters"]) >= {
                "numa_alloc_local_total",
                "numa_alloc_remote_total",
            }
            for tenant in record["tenants"]:
                assert tenant["home_node"] == tenant["tenant"] % 2

    def test_environment_facts_excluded_from_manifest(self, tmp_path):
        manifest = run_multi_tenant(_config(tmp_path))
        assert "jobs" not in manifest["config"]
        assert "out_dir" not in manifest["config"]
        assert "timeout_s" not in manifest["config"]
        assert str(tmp_path) not in json.dumps(manifest)

    def test_flat_run_has_no_numa_keys(self, tmp_path):
        manifest = run_multi_tenant(_config(tmp_path, numa_nodes=1))
        assert "mean_node_fmfi" not in manifest["totals"]
        for record in manifest["shards"]:
            assert "numa_counters" not in record["machine"]
            assert "node_fmfi" not in record["machine"]


class TestOversubscriptionWarning:
    def _build(self):
        # 64 tenants on a shard sized for far fewer: peak demand clears
        # the 90% threshold and the constructor warns.
        return MultiTenantMachine(
            list(range(64)), seed=1, regions_per_tenant=0.2
        )

    def test_warns_once_per_shape_not_per_machine(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            self._build()
            self._build()  # same shape: silenced by the warn-once key
        runtime = [
            w for w in caught if issubclass(w.category, RuntimeWarning)
        ]
        assert len(runtime) == 1
        assert "oversubscribed" in str(runtime[0].message)

    def test_reset_allows_the_shape_to_warn_again(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            self._build()
            MultiTenantMachine.reset_warned()
            self._build()
        runtime = [
            w for w in caught if issubclass(w.category, RuntimeWarning)
        ]
        assert len(runtime) == 2

    def test_right_sized_shard_stays_silent(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            MultiTenantMachine([0, 1], seed=1)
        assert not [
            w for w in caught if issubclass(w.category, RuntimeWarning)
        ]

    def test_empty_shard_rejected(self):
        with pytest.raises(ValueError, match="tenants"):
            MultiTenantMachine([])


class TestAuditedChurn:
    def test_two_node_audited_run_is_clean(self, tmp_path):
        """The acceptance loop in miniature: churn + NUMA + audit."""
        record = run_shard(
            shard=0,
            tenant_ids=[0, 1, 2, 3],
            policy="Trident",
            seed=5,
            rounds=3,
            accesses_per_round=400,
            churn_prob=0.8,
            max_segments=3,
            regions_per_tenant=1.5,
            numa_nodes=2,
            numa_remote_multiplier=1.5,
            pt_replication=True,
            audit=True,
        )
        machine = record["machine"]
        assert machine["audit_violations"] == 0
        assert machine["audit_checks"] > 0
        counters = machine["numa_counters"]
        assert counters["numa_replica_updates_total"] == machine["faults"]
        assert counters["numa_remote_walk_penalty_ns_total"] == 0
