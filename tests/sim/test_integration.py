"""End-to-end integration tests: full pipelines at small scale.

These exercise the exact paths the figure regenerators use, asserting the
paper's key orderings on tiny inputs so they run in CI time.
"""


from repro.experiments.runner import NativeRunner, RunConfig, VirtRunConfig, VirtRunner

BASE, MID, LARGE = 0, 1, 2  # three-tier level indices (x86-shaped test geometry)


def native(workload, policy, **kw):
    kw.setdefault("n_accesses", 12_000)
    kw.setdefault("machine_regions", 96)
    return NativeRunner(RunConfig(workload, policy, **kw)).run()


class TestNativePipeline:
    def test_figure1_ordering_for_gups(self):
        m4 = native("GUPS", "4KB")
        mthp = native("GUPS", "2MB-THP")
        mtri = native("GUPS", "Trident")
        assert mthp.speedup_over(m4) > 1.2
        assert mtri.speedup_over(m4) > mthp.speedup_over(m4)
        assert (
            mtri.walk_cycle_fraction
            < mthp.walk_cycle_fraction
            < m4.walk_cycle_fraction
        )

    def test_thp_within_noise_of_static_2mb(self):
        mthp = native("Canneal", "2MB-THP")
        mhug = native("Canneal", "2MB-Hugetlbfs")
        assert abs(mthp.speedup_over(mhug) - 1.0) < 0.1

    def test_unshaded_workload_insensitive_to_1gb(self):
        mthp = native("PR", "2MB-THP", n_accesses=15_000)
        mtri = native("PR", "Trident", n_accesses=15_000)
        assert abs(mtri.speedup_over(mthp) - 1.0) < 0.05

    def test_fragmentation_reduces_but_does_not_kill_trident(self):
        clean = native("Canneal", "Trident")
        frag = native("Canneal", "Trident", fragmented=True)
        clean_large = clean.mapped_bytes_by_size[LARGE]
        frag_large = frag.mapped_bytes_by_size[LARGE]
        assert frag_large <= clean_large
        assert frag_large > 0  # smart compaction recovered chunks

    def test_ablation_ordering_for_graph500(self):
        mthp = native("Graph500", "2MB-THP")
        m1g = native("Graph500", "Trident-1Gonly")
        mtri = native("Graph500", "Trident")
        # All sizes beat 1G-only (Figure 11's headline).
        assert mtri.speedup_over(mthp) > m1g.speedup_over(mthp)


class TestVirtPipeline:
    def test_virt_amplifies_large_page_value(self):
        kw = dict(n_accesses=10_000, guest_regions=96)
        thp = VirtRunner(
            VirtRunConfig("Canneal", "2MB-THP", "2MB-THP", **kw)
        ).run()
        tri = VirtRunner(
            VirtRunConfig("Canneal", "Trident", "Trident", **kw)
        ).run()
        native_gain = native("Canneal", "Trident").speedup_over(
            native("Canneal", "2MB-THP")
        )
        virt_gain = tri.speedup_over(thp)
        assert virt_gain > 1.0
        # Nested walks make 1GB at least comparably valuable under virt.
        assert virt_gain > native_gain * 0.8

    def test_host_policy_caps_effective_size(self):
        kw = dict(n_accesses=8_000, guest_regions=96)
        both = VirtRunner(
            VirtRunConfig("GUPS", "Trident", "Trident", **kw)
        ).run()
        host4k = VirtRunner(VirtRunConfig("GUPS", "Trident", "4KB", **kw)).run()
        # A 4KB host forces 4KB effective entries: far more walk cycles.
        assert (
            host4k.walk_cycles_per_access > 3 * both.walk_cycles_per_access
        )


class TestTailLatencyPipeline:
    def test_trident_does_not_blow_up_p99(self):
        kw = dict(
            n_accesses=8_000,
            machine_regions=128,
            record_requests=True,
        )
        thp = native("Redis", "2MB-THP", **kw)
        tri = native("Redis", "Trident", **kw)
        assert tri.percentile_latency_ns(99) <= thp.percentile_latency_ns(99) * 1.3
