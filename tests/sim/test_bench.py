"""The ``repro bench`` harness: equivalence gate, report shape, CLI exit."""

from __future__ import annotations

import json

from repro.cli import main
from repro.sim.bench import bench_policy, run_bench

# Tiny but real: enough accesses to exercise faults, promotion and the
# warm timed region.  No throughput assertions here — wall-clock speed
# is the bench *output*, not a unit-test invariant (CI machines vary);
# the counter-equivalence gate is what must always hold.
TINY = dict(accesses=20_000, footprint=4 * 1024 * 1024, regions=8)


def test_bench_policy_counters_match():
    result = bench_policy("Trident", **TINY)
    assert result["counters_match"], result["mismatched_keys"]
    assert result["policy"] == "Trident"
    assert result["timed_accesses"] == 16_000
    assert result["counters"]["accesses"] > 0
    assert result["batch_mps"] > 0 and result["scalar_mps"] > 0


def test_run_bench_writes_report(tmp_path, capsys):
    out = tmp_path / "bench.json"
    report, ok = run_bench(("4KB",), out=str(out), min_speedup=0.0, **TINY)
    assert ok
    on_disk = json.loads(out.read_text())
    assert on_disk["ok"] and on_disk == report
    assert on_disk["benchmark"] == "hotpath"
    assert on_disk["config"]["accesses"] == TINY["accesses"]
    (result,) = on_disk["results"]
    assert result["counters_match"] and result["mismatched_keys"] == []
    assert "speedup" in result
    assert "4KB" in capsys.readouterr().out


def test_run_bench_fails_below_min_speedup(tmp_path):
    _, ok = run_bench(
        ("4KB",), out=str(tmp_path / "b.json"), min_speedup=1e9, **TINY
    )
    assert not ok


def test_bench_results_are_gateable_at_tiny_but_real_sizes():
    result = bench_policy("4KB", **TINY)
    assert result["gateable"]


def test_run_bench_too_short_to_gate(tmp_path, capsys):
    """A 100-access run can't produce a meaningful speedup ratio: with a
    --min-speedup gate it must fail with a clear message, not divide by a
    ~0 scalar wall time."""
    report, ok = run_bench(
        ("4KB",),
        accesses=100,
        footprint=1024 * 1024,
        regions=4,
        out=str(tmp_path / "b.json"),
        min_speedup=1.0,
    )
    assert not ok
    (result,) = report["results"]
    assert result["counters_match"]  # equivalence still checked
    assert not result["gateable"]
    assert result["timed_accesses"] == 80
    err = capsys.readouterr().err
    assert "run too short to gate" in err
    assert "--accesses" in err


def test_run_bench_short_run_passes_without_gate(tmp_path):
    """min_speedup=0 disables the gate, so a tiny equivalence-only run
    still exits cleanly."""
    _, ok = run_bench(
        ("4KB",),
        accesses=100,
        footprint=1024 * 1024,
        regions=4,
        out=str(tmp_path / "b.json"),
        min_speedup=0.0,
    )
    assert ok


def test_cli_bench_exit_codes(tmp_path):
    out = tmp_path / "cli_bench.json"
    argv = ["bench", "--accesses", "20000", "--policy", "4KB", "-o", str(out)]
    assert main(argv + ["--min-speedup", "0"]) == 0
    assert out.exists()
    assert main(argv + ["--min-speedup", "1000000"]) == 4
    # too short to gate: nonzero with the default --min-speedup of 1.0
    tiny = ["bench", "--accesses", "100", "--policy", "4KB", "-o", str(out)]
    assert main(tiny) == 4
