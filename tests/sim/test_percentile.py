"""Nearest-rank percentile semantics of RunMetrics (Table 5 tails)."""

import pytest

from repro.sim.perfmodel import RunMetrics


def metrics_with(latencies):
    return RunMetrics(
        policy="Trident",
        workload="Redis",
        accesses=1,
        translation_cycles=0.0,
        walk_cycles=0.0,
        walks=0,
        fault_ns=0.0,
        daemon_ns=0.0,
        represented_accesses=1,
        cpi_base=1.0,
        request_latencies_ns=latencies,
    )


class TestPercentileLatency:
    def test_empty_samples_return_zero(self):
        assert metrics_with(None).percentile_latency_ns(99) == 0.0
        assert metrics_with([]).percentile_latency_ns(99) == 0.0

    def test_p0_is_minimum(self):
        m = metrics_with([30.0, 10.0, 20.0])
        assert m.percentile_latency_ns(0) == 10.0

    def test_p50_of_even_count_is_lower_middle(self):
        # ceil(0.5 * 4) = 2 -> second-smallest sample
        m = metrics_with([40.0, 10.0, 30.0, 20.0])
        assert m.percentile_latency_ns(50) == 20.0

    def test_p100_is_maximum(self):
        m = metrics_with([5.0, 50.0, 25.0])
        assert m.percentile_latency_ns(100) == 50.0

    def test_p99_of_fifty_samples_is_last(self):
        """The round() regression: rank 48.51 was rounded down to 48,
        reporting the 49th of 50 sorted samples as p99.  Nearest-rank says
        ceil(49.5) = 50 -> the maximum."""
        data = [float(i) for i in range(1, 51)]
        assert metrics_with(data).percentile_latency_ns(99) == 50.0

    def test_p25_of_four_samples(self):
        # ceil(0.25 * 4) = 1 -> the minimum; round() would also give 1 here,
        # but ceil differs at e.g. p26: ceil(1.04) = 2.
        m = metrics_with([1.0, 2.0, 3.0, 4.0])
        assert m.percentile_latency_ns(25) == 1.0
        assert m.percentile_latency_ns(26) == 2.0

    def test_out_of_range_pct_rejected(self):
        m = metrics_with([1.0])
        with pytest.raises(ValueError):
            m.percentile_latency_ns(-1)
        with pytest.raises(ValueError):
            m.percentile_latency_ns(100.5)
