"""Cell and fleet tests: latency composition, determinism, jobs parity."""

import json

import pytest

from repro.obs.metrics import percentile_from_buckets
from repro.service.fleet import (
    LATENCY_BUCKETS_NS,
    ServiceConfig,
    TenantSpec,
    build_cell_specs,
    cell_id,
    run_fleet,
    run_service_cell,
)

# Small-but-real cell: 16MB GUPS footprint, tens of requests.
CELL_KWARGS = dict(
    workload="GUPS",
    policy="Trident",
    tenant=0,
    rate_rps=20_000.0,
    duration_s=0.003,
    seed=99,
    scale_factor=2048,
    settle_ticks=40,
)


def run_cell(**overrides):
    kwargs = {**CELL_KWARGS, **overrides}
    return run_service_cell(**kwargs)


class TestServiceCell:
    def test_record_shape_and_counts(self):
        record = run_cell()
        assert record["requests"] > 0
        assert record["latency"]["count"] == record["requests"]
        assert record["queue_delay"]["count"] == record["requests"]
        assert record["mode"] == "open"
        # Every latency includes at least the base service time.
        assert record["latency"]["sum"] / record["requests"] >= 20_000.0

    def test_byte_deterministic_across_runs(self):
        a = json.dumps(run_cell(), sort_keys=True)
        b = json.dumps(run_cell(), sort_keys=True)
        assert a == b

    def test_seed_changes_schedule(self):
        a = run_cell()
        b = run_cell(seed=100)
        assert a["requests"] != b["requests"] or a["latency"] != b["latency"]

    def test_slo_violations_counted(self):
        # An SLO below the base service time flags every request.
        record = run_cell(slo_ms=20_000.0 / 1e6 / 2)
        assert record["slo_violations"] == record["requests"]
        relaxed = run_cell(slo_ms=1e6)  # absurdly generous: none flagged
        assert relaxed["slo_violations"] == 0

    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError, match="mode"):
            run_cell(mode="semi-open")

    def test_trace_driven_arrivals(self, tmp_path):
        trace = tmp_path / "arrivals.txt"
        trace.write_text("".join(f"{i * 0.0001}\n" for i in range(1, 21)))
        record = run_cell(arrivals_path=str(trace))
        assert record["requests"] == 20

    def test_closed_loop_has_no_queueing(self):
        record = run_cell(mode="closed")
        assert record["queue_delay_mean_ns"] == 0.0
        assert record["queue_delay"]["buckets"]["+Inf"] == 0


class TestNumaCell:
    def test_flat_cell_record_has_no_numa_section(self):
        assert "numa" not in run_cell()

    def test_two_node_cell_reports_numa_section(self):
        record = run_cell(numa_nodes=2, numa_remote_multiplier=1.5, home_node=1)
        numa = record["numa"]
        assert numa["nodes"] == 2
        assert numa["home_node"] == 1
        assert numa["pt_replication"] is False
        assert len(numa["node_free_frames"]) == 2
        assert len(numa["node_fmfi"]) == 2
        # Page tables sit on node 0, the tenant on node 1: walks paid.
        assert numa["counters"]["numa_remote_walk_penalty_ns_total"] > 0

    def test_replication_removes_the_walk_penalty(self):
        plain = run_cell(
            numa_nodes=2, numa_remote_multiplier=1.5, home_node=1
        )
        repl = run_cell(
            numa_nodes=2,
            numa_remote_multiplier=1.5,
            home_node=1,
            pt_replication=True,
        )
        assert repl["numa"]["counters"]["numa_remote_walk_penalty_ns_total"] == 0
        assert repl["numa"]["counters"]["numa_replica_updates_total"] > 0
        assert plain["numa"]["counters"]["numa_replica_updates_total"] == 0

    def test_fleet_config_pins_cells_round_robin(self, tmp_path):
        config = ServiceConfig(
            tenants=tuple(
                TenantSpec("GUPS", "Trident", 20_000.0) for _ in range(4)
            ),
            duration_s=0.002,
            seed=13,
            out_dir=str(tmp_path),
            scale_factor=2048,
            settle_ticks=40,
            numa_nodes=2,
        )
        specs = build_cell_specs(config)
        assert [s.kwargs["home_node"] for s in specs] == [0, 1, 0, 1]
        assert all(s.kwargs["numa_nodes"] == 2 for s in specs)
        flat_config = ServiceConfig(
            tenants=config.tenants,
            duration_s=0.002,
            seed=13,
            out_dir=str(tmp_path / "flat"),
            scale_factor=2048,
            settle_ticks=40,
        )
        assert flat_config.numa_nodes == 1
        # Flat fleets keep pre-NUMA kwargs (and therefore bytes) exactly.
        assert all(
            "numa_nodes" not in s.kwargs for s in build_cell_specs(flat_config)
        )


class TestOpenVsClosedLoopSaturation:
    """The acceptance-criteria integration test: under saturation the
    open-loop generator keeps arrivals coming while the closed-loop one
    waits for completions, so open-loop latency must blow up with
    queueing delay while closed-loop latency stays near service time."""

    RATE = 200_000.0  # >> tenant capacity (~1/20us base service time)

    def test_open_loop_queueing_dominates(self):
        open_r = run_cell(rate_rps=self.RATE)
        closed_r = run_cell(rate_rps=self.RATE, mode="closed")
        open_p50 = percentile_from_buckets(open_r["latency"], 50)
        closed_p50 = percentile_from_buckets(closed_r["latency"], 50)
        assert open_p50 > 10 * closed_p50
        assert open_r["queue_delay_mean_ns"] > 0.0
        assert closed_r["queue_delay_mean_ns"] == 0.0
        # The open-loop cell finishes late (queue drains after the last
        # arrival); the closed-loop cell never outruns its own server.
        assert open_r["span_clock_ns"] > self.RATE and open_r["requests"] > 0


class TestFleet:
    def _config(self, tmp_path, jobs=1, tenants=2):
        return ServiceConfig(
            tenants=tuple(
                TenantSpec("GUPS", policy, 20_000.0)
                for policy in ("Trident", "4KB")
                for _ in range(tenants // 2 or 1)
            ),
            duration_s=0.002,
            seed=13,
            jobs=jobs,
            out_dir=str(tmp_path / f"svc-j{jobs}"),
            scale_factor=2048,
            settle_ticks=40,
        )

    def test_cell_ids_and_seeds_are_stable(self, tmp_path):
        config = self._config(tmp_path)
        specs = build_cell_specs(config)
        assert [s.unit_id for s in specs] == [
            cell_id(t, i) for i, t in enumerate(config.tenants)
        ]
        assert len({s.seed for s in specs}) == len(specs)
        again = build_cell_specs(config)
        assert [s.seed for s in specs] == [s.seed for s in again]

    def test_fleet_report_written_and_grouped(self, tmp_path):
        config = self._config(tmp_path)
        report = run_fleet(config)
        assert report["kind"] == "service_report"
        assert {g["policy"] for g in report["groups"]} == {"Trident", "4KB"}
        on_disk = json.load(
            open(tmp_path / "svc-j1" / "service_report.json")
        )
        assert on_disk == json.loads(json.dumps(report))
        csv = open(tmp_path / "svc-j1" / "saturation.csv").read()
        assert "GUPS/Trident" in csv and "GUPS/4KB" in csv

    def test_jobs_parity_byte_identical_report(self, tmp_path):
        run_fleet(self._config(tmp_path, jobs=1))
        run_fleet(self._config(tmp_path, jobs=2))
        serial = open(tmp_path / "svc-j1" / "service_report.json").read()
        parallel = open(tmp_path / "svc-j2" / "service_report.json").read()
        assert serial == parallel

    def test_empty_fleet_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="tenants"):
            run_fleet(ServiceConfig(out_dir=str(tmp_path)))

    def test_failed_cell_names_the_tenant(self, tmp_path):
        config = self._config(tmp_path)
        config.tenants = (TenantSpec("GUPS", "no-such-policy", 1000.0),)
        with pytest.raises(RuntimeError, match="no-such-policy"):
            run_fleet(config)


class TestLatencyBuckets:
    def test_ladder_is_sorted_and_spans_us_to_s(self):
        assert list(LATENCY_BUCKETS_NS) == sorted(LATENCY_BUCKETS_NS)
        assert LATENCY_BUCKETS_NS[0] == 1_000  # 1us
        assert LATENCY_BUCKETS_NS[-1] == 5 * 10**9  # 5s
