"""Fleet telemetry end-to-end: frame streams, alerts, jobs parity.

Uses the burst-then-sparse arrival trace the CI telemetry-smoke job also
drives: a 60-request burst in the first 0.4ms saturates the cell (SLO
burn climbs through both alert windows), then sparse arrivals let the
queue drain so the alert demonstrably fires AND resolves in one run.
"""

import json
import os

import pytest

from repro.obs.telemetry.exposition import iter_frames, validate_exposition
from repro.service.fleet import ServiceConfig, TenantSpec, run_fleet

ALERT_RULES = {
    "rules": [
        {
            "name": "slo-burn",
            "kind": "burn_rate",
            "numerator": "service_slo_violations_total",
            "denominator": "service_requests_total",
            "objective": 0.05,
            "fast_window_ms": 0.6,
            "slow_window_ms": 2.0,
            "burn_threshold": 2.0,
            "for_frames": 2,
            "keep_frames": 3,
        }
    ]
}


def _write_burst_trace(path) -> None:
    """60 arrivals in the first 0.4ms, then one every 0.15ms to 4ms."""
    offsets = [i * 0.4e-3 / 60 for i in range(60)]
    t = 1.0e-3
    while t < 4.0e-3:
        offsets.append(t)
        t += 0.15e-3
    path.write_text("".join(f"{off:.9f}\n" for off in offsets))


def _config(
    tmp_path, jobs: int = 1, label: str = "run", tenants: tuple | None = None
) -> ServiceConfig:
    arrivals = tmp_path / "burst_arrivals.txt"
    if not arrivals.exists():
        _write_burst_trace(arrivals)
    rules = tmp_path / "alert_rules.json"
    if not rules.exists():
        rules.write_text(json.dumps(ALERT_RULES))
    out_dir = tmp_path / label
    return ServiceConfig(
        tenants=tenants or (TenantSpec("GUPS", "Trident", 20_000.0),),
        duration_s=0.004,
        slo_ms=0.1,
        seed=7,
        jobs=jobs,
        arrivals_path=str(arrivals),
        scale_factor=2048,
        settle_ticks=40,
        out_dir=str(out_dir),
        telemetry_out=str(out_dir / "telemetry"),
        telemetry_interval_ms=0.2,
        alerts_path=str(rules),
    )


def _read_streams(out_dir: str) -> dict:
    streams = {}
    telemetry = os.path.join(out_dir, "telemetry")
    for name in sorted(os.listdir(telemetry)):
        if name.endswith(".prom"):
            with open(os.path.join(telemetry, name)) as f:
                streams[name] = f.read()
    return streams


@pytest.fixture(scope="module")
def fleet_run(tmp_path_factory):
    tmp_path = tmp_path_factory.mktemp("telemetry_fleet")
    config = _config(tmp_path, jobs=1)
    report = run_fleet(config)
    return tmp_path, config, report


class TestFleetTelemetry:
    def test_every_frame_validates(self, fleet_run):
        _, config, _ = fleet_run
        streams = _read_streams(config.out_dir)
        assert streams  # one .prom per cell
        for text in streams.values():
            frames = list(iter_frames(text))
            assert len(frames) > 10
            for seq, _, frame in frames:
                validate_exposition(frame)
            # Sequence numbers are gapless from 1.
            assert [seq for seq, _, _ in frames] == list(
                range(1, len(frames) + 1)
            )
            # The stream is exactly its frames: no partial trailing frame.
            assert "".join(frame for _, _, frame in frames) == text

    def test_streams_carry_labeled_service_series(self, fleet_run):
        _, config, _ = fleet_run
        (text,) = _read_streams(config.out_dir).values()
        assert (
            'service_requests_total{policy="Trident",workload="GUPS"}' in text
        )
        assert "# TYPE service_request_latency_ns histogram" in text
        assert "telemetry_frames_total" in text
        assert "alerts_active" in text

    def test_alert_fires_and_resolves(self, fleet_run):
        _, config, report = fleet_run
        with open(os.path.join(config.out_dir, "alerts.json")) as f:
            merged = json.load(f)
        states = [t["state"] for t in merged["transitions"]]
        assert states == ["firing", "resolved"]
        firing, resolved = merged["transitions"]
        assert firing["rule"] == "slo-burn"
        assert resolved["sim_ms"] > firing["sim_ms"]
        assert merged["firing"] == 1 and merged["resolved"] == 1
        assert report["alerts"] == {"firing": 1, "resolved": 1, "active": 0}

    def test_alert_transitions_visible_in_stream(self, fleet_run):
        _, config, _ = fleet_run
        (text,) = _read_streams(config.out_dir).values()
        assert 'alert_transitions_total{rule="slo-burn"} 2' in text

    def test_report_table_mentions_alerts(self, fleet_run):
        from repro.service.report import render_service_table

        _, _, report = fleet_run
        lines = render_service_table(report)
        assert any(
            "alerts: 1 fired, 1 resolved, 0 still active" in line
            for line in lines
        )


class TestJobsParity:
    def test_jobs_1_vs_4_byte_identical(self, tmp_path):
        # Two tenants so jobs=4 actually schedules cells on different
        # workers; streams, alerts and the report must not notice.
        tenants = (
            TenantSpec("GUPS", "Trident", 20_000.0),
            TenantSpec("GUPS", "4KB", 20_000.0),
        )
        report_1 = run_fleet(_config(tmp_path, jobs=1, label="j1", tenants=tenants))
        report_4 = run_fleet(_config(tmp_path, jobs=4, label="j4", tenants=tenants))
        assert json.dumps(report_1, sort_keys=True) == json.dumps(
            report_4, sort_keys=True
        )
        streams_1 = _read_streams(str(tmp_path / "j1"))
        streams_4 = _read_streams(str(tmp_path / "j4"))
        assert list(streams_1) == list(streams_4)
        for name in streams_1:
            assert streams_1[name] == streams_4[name], name
        for artifact in ("alerts.json", "service_report.json"):
            with open(tmp_path / "j1" / artifact) as f:
                first = f.read()
            with open(tmp_path / "j4" / artifact) as f:
                second = f.read()
            assert first == second, artifact
