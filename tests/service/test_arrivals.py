"""Arrival-process tests: determinism, statistics, trace validation."""

import numpy as np
import pytest

from repro.service.arrivals import (
    closed_loop_count,
    poisson_arrivals,
    trace_arrivals,
)


class TestPoissonArrivals:
    def test_deterministic_for_seed(self):
        a = poisson_arrivals(42, rate_rps=10_000, duration_s=0.01)
        b = poisson_arrivals(42, rate_rps=10_000, duration_s=0.01)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = poisson_arrivals(1, rate_rps=10_000, duration_s=0.01)
        b = poisson_arrivals(2, rate_rps=10_000, duration_s=0.01)
        assert not np.array_equal(a, b)

    def test_sorted_positive_and_bounded(self):
        offsets = poisson_arrivals(7, rate_rps=50_000, duration_s=0.002)
        assert np.all(np.diff(offsets) > 0)
        assert offsets[0] > 0.0
        assert offsets[-1] < 0.002 * 1e9

    def test_count_tracks_offered_rate(self):
        # 20k rps over 50ms => ~1000 arrivals; Poisson sd is ~32, so a
        # +-20% window is a ~6-sigma determinism-safe check.
        offsets = poisson_arrivals(3, rate_rps=20_000, duration_s=0.05)
        assert 800 <= len(offsets) <= 1200

    def test_short_window_extends_until_covered(self):
        # rate*duration < 1 forces the chunked draw to extend repeatedly.
        offsets = poisson_arrivals(5, rate_rps=10.0, duration_s=0.01)
        assert np.all(offsets < 0.01 * 1e9)

    def test_rejects_nonpositive_inputs(self):
        with pytest.raises(ValueError, match="rate_rps"):
            poisson_arrivals(1, rate_rps=0.0, duration_s=1.0)
        with pytest.raises(ValueError, match="duration_s"):
            poisson_arrivals(1, rate_rps=10.0, duration_s=-1.0)


class TestTraceArrivals:
    def test_parses_sorts_and_scales(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("# warmup done\n0.002\n0.001\n\n0.0035  # tail\n")
        offsets = trace_arrivals(str(path))
        np.testing.assert_allclose(offsets, [1e6, 2e6, 3.5e6])

    def test_duration_truncates(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("0.001\n0.002\n0.009\n")
        offsets = trace_arrivals(str(path), duration_s=0.005)
        assert len(offsets) == 2

    def test_bad_line_reports_path_and_lineno(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("0.001\nbanana\n")
        with pytest.raises(ValueError, match=r"trace\.txt:2"):
            trace_arrivals(str(path))

    def test_negative_offset_rejected(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("-0.5\n")
        with pytest.raises(ValueError, match="negative"):
            trace_arrivals(str(path))

    def test_empty_trace_rejected(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("# nothing here\n")
        with pytest.raises(ValueError, match="empty"):
            trace_arrivals(str(path))

    def test_window_excluding_all_arrivals_rejected(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("5.0\n")
        with pytest.raises(ValueError, match="window"):
            trace_arrivals(str(path), duration_s=0.001)


class TestClosedLoopCount:
    def test_expected_count(self):
        assert closed_loop_count(20_000, 0.01) == 200

    def test_floors_at_one(self):
        assert closed_loop_count(1.0, 0.001) == 1

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            closed_loop_count(0.0, 1.0)
