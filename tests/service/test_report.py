"""Report-layer tests: histogram merging, percentiles, saturation order."""

import math

import pytest

from repro.obs.metrics import Histogram, percentile_from_buckets
from repro.service.fleet import ServiceConfig
from repro.service.report import (
    build_service_report,
    merge_histogram_exports,
    render_service_table,
)


def _export(values, bounds=(100, 1000, 10_000)):
    h = Histogram("h", {}, bounds=bounds)
    for v in values:
        h.observe(v)
    return h.export()


def _record(policy="Trident", rate=1000.0, tenant=0, values=(50, 200)):
    return {
        "workload": "GUPS",
        "policy": policy,
        "tenant": tenant,
        "mode": "open",
        "rate_rps": rate,
        "duration_s": 0.01,
        "accesses_per_request": 16,
        "requests": len(values),
        "slo_ms": 1.0,
        "slo_violations": 1,
        "queue_delay_mean_ns": 10.0,
        "completed_rps": 900.0,
        "span_clock_ns": 1e7,
        "latency": _export(values),
        "queue_delay": _export([0] * len(values)),
    }


class TestMergeHistogramExports:
    def test_counts_sums_and_max_merge(self):
        merged = merge_histogram_exports(
            [_export([50, 200]), _export([5000, 20_000])]
        )
        assert merged["count"] == 4
        assert merged["sum"] == 25_250.0
        assert merged["max"] == 20_000
        assert merged["buckets"]["+Inf"] == 1

    def test_merged_overflow_percentile_is_finite(self):
        merged = merge_histogram_exports(
            [_export([50]), _export([99_000])]  # second lands in overflow
        )
        assert percentile_from_buckets(merged, 100) == 99_000.0
        assert not math.isinf(percentile_from_buckets(merged, 100))

    def test_empty_input(self):
        assert merge_histogram_exports([])["count"] == 0

    def test_mismatched_bounds_rejected(self):
        with pytest.raises(ValueError, match="bounds"):
            merge_histogram_exports(
                [_export([1]), _export([1], bounds=(7, 8))]
            )

    def test_max_absent_when_all_inputs_empty(self):
        merged = merge_histogram_exports([_export([]), _export([])])
        assert "max" not in merged


class TestPercentileClampedToMergedMax:
    """Regression: merging cells whose maxima sit buckets apart must not
    report a percentile beyond anything any tenant observed.

    ``percentile_from_buckets`` returns the landing bucket's *upper
    bound*; with bounds (100, 1000, 10000) a lone 3200ns observation from
    the slow cell lands in the 10000 bucket, so the unclamped merged p100
    read 10000 — 3x the true maximum.  The merged ``max`` caps it.
    """

    def test_p100_clamped_when_cell_maxima_differ_by_two_buckets(self):
        fast = _record(tenant=0, values=(50,))  # max in the 100 bucket
        slow = _record(tenant=1, values=(3200,))  # lands 2 buckets up
        report = build_service_report(
            ServiceConfig(duration_s=0.01, seed=3, slo_ms=1.0),
            [fast, slow],
        )
        lat = report["groups"][0]["latency_ns"]
        assert lat["p100"] == 3200.0
        assert report["groups"][0]["latency_hist"]["max"] == 3200
        # Unclamped, the same merge overstates the tail: prove the clamp
        # is what saved it.
        merged = merge_histogram_exports(
            [fast["latency"], slow["latency"]]
        )
        assert percentile_from_buckets(merged, 100) == 10_000.0

    def test_lower_percentiles_unaffected_by_clamp(self):
        records = [_record(tenant=t, values=(50, 200)) for t in range(2)]
        report = build_service_report(
            ServiceConfig(duration_s=0.01, seed=3, slo_ms=1.0), records
        )
        lat = report["groups"][0]["latency_ns"]
        assert lat["p50"] == 100.0  # true bucket bound, below the max
        assert lat["p100"] == 200.0

    def test_empty_histogram_skips_clamp(self):
        # No observations -> no "max" key -> clamp must not crash.
        record = _record(values=())
        record["requests"] = 0
        report = build_service_report(
            ServiceConfig(duration_s=0.01, seed=3, slo_ms=1.0), [record]
        )
        assert report["groups"][0]["latency_ns"]["p100"] == 0.0


class TestBuildServiceReport:
    def _config(self):
        return ServiceConfig(duration_s=0.01, seed=3, slo_ms=1.0)

    def test_tenants_of_one_group_merge(self):
        records = [
            _record(tenant=0, values=(50, 200)),
            _record(tenant=1, values=(5000,)),
        ]
        report = build_service_report(self._config(), records)
        assert len(report["groups"]) == 1
        group = report["groups"][0]
        assert group["tenants"] == 2
        assert group["requests"] == 3
        assert group["slo_violations"] == 2
        assert group["latency_hist"]["count"] == 3
        assert group["offered_rps"] == 2000.0

    def test_groups_sorted_and_saturation_rate_ordered(self):
        records = [
            _record(rate=8000.0),
            _record(rate=1000.0),
            _record(policy="4KB", rate=1000.0),
        ]
        report = build_service_report(self._config(), records)
        keys = [(g["policy"], g["rate_rps"]) for g in report["groups"]]
        assert keys == sorted(keys)
        points = report["saturation"]["GUPS/Trident"]
        assert [p["offered_rps"] for p in points] == [1000.0, 8000.0]

    def test_report_excludes_environment_facts(self):
        config = self._config()
        config.out_dir = "/some/where"
        config.jobs = 8
        report = build_service_report(config, [_record()])
        text = str(report)
        assert "/some/where" not in text
        assert "jobs" not in report

    def test_render_table_mentions_every_group(self):
        report = build_service_report(
            self._config(), [_record(), _record(policy="4KB")]
        )
        text = "\n".join(render_service_table(report))
        assert "Trident" in text and "4KB" in text
        assert "p99" in text
