"""Tests for the set-associative TLB and the walk-cost model."""

import pytest

from repro.config import TLBConfig, WalkConfig
from repro.tlb.tlb import SetAssocTLB
from repro.tlb.walker import PageWalker

BASE, MID, LARGE = 0, 1, 2  # three-tier level indices (x86-shaped test geometry)


class TestSetAssocTLB:
    def test_miss_then_hit(self):
        t = SetAssocTLB(TLBConfig(8, 2))
        assert not t.lookup(5)
        t.insert(5)
        assert t.lookup(5)
        assert t.hits == 1
        assert t.misses == 1

    def test_lru_eviction_within_set(self):
        t = SetAssocTLB(TLBConfig(8, 2))  # 4 sets, 2 ways
        # VPNs 0, 4, 8 all map to set 0.
        t.insert(0)
        t.insert(4)
        t.insert(8)  # evicts 0 (LRU)
        assert not t.lookup(0)
        assert t.lookup(4)
        assert t.lookup(8)

    def test_hit_refreshes_lru(self):
        t = SetAssocTLB(TLBConfig(8, 2))
        t.insert(0)
        t.insert(4)
        t.lookup(0)  # 0 becomes MRU, 4 is now LRU
        t.insert(8)  # evicts 4
        assert t.lookup(0)
        assert not t.lookup(4)

    def test_different_sets_do_not_interfere(self):
        t = SetAssocTLB(TLBConfig(8, 2))
        t.insert(0)
        t.insert(1)
        t.insert(2)
        t.insert(3)
        assert all(t.lookup(v) for v in range(4))

    def test_fully_associative(self):
        t = SetAssocTLB(TLBConfig(4, 4))  # the Skylake 1GB L1
        for v in range(4):
            t.insert(v)
        assert t.occupancy == 4
        t.insert(99)  # evicts vpn 0
        assert not t.lookup(0)
        assert t.lookup(99)

    def test_reinsert_does_not_duplicate(self):
        t = SetAssocTLB(TLBConfig(4, 4))
        t.insert(1)
        t.insert(1)
        assert t.occupancy == 1

    def test_invalidate(self):
        t = SetAssocTLB(TLBConfig(4, 4))
        t.insert(3)
        assert t.invalidate(3)
        assert not t.invalidate(3)
        assert not t.lookup(3)

    def test_flush(self):
        t = SetAssocTLB(TLBConfig(8, 2))
        for v in range(8):
            t.insert(v)
        t.flush()
        assert t.occupancy == 0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            TLBConfig(7, 2)  # entries not multiple of ways
        with pytest.raises(ValueError):
            TLBConfig(0, 1)


class TestWalkConfig:
    def test_native_walk_accesses(self):
        w = WalkConfig()
        assert w.native_walk_accesses(BASE) == 4
        assert w.native_walk_accesses(MID) == 3
        assert w.native_walk_accesses(LARGE) == 2

    def test_nested_walk_accesses_match_paper(self):
        # Section 2: 24 accesses for 4K+4K, 15 for 2M+2M, 8 for 1G+1G.
        w = WalkConfig()
        assert w.nested_walk_accesses(BASE, BASE) == 24
        assert w.nested_walk_accesses(MID, MID) == 15
        assert w.nested_walk_accesses(LARGE, LARGE) == 8

    def test_nested_mixed_sizes(self):
        w = WalkConfig()
        # 1GB guest over 4KB host: (2+1)*(4+1)-1 = 14.
        assert w.nested_walk_accesses(LARGE, BASE) == 14


class TestPageWalker:
    def test_larger_pages_walk_faster(self):
        w = PageWalker(WalkConfig())
        c_base = w.native_walk(BASE)
        c_mid = w.native_walk(MID)
        c_large = w.native_walk(LARGE)
        assert c_base > c_mid > c_large

    def test_nested_costs_more_than_native(self):
        w = PageWalker(WalkConfig())
        assert w.nested_walk(BASE, BASE) > w.native_walk(
            BASE
        )

    def test_pwc_discount(self):
        hot = PageWalker(WalkConfig(pwc_hit_rate=1.0))
        cold = PageWalker(WalkConfig(pwc_hit_rate=0.0))
        # Perfect PWC: only the leaf access remains.
        assert hot.native_walk(BASE) == WalkConfig().mem_access_cycles
        assert cold.native_walk(BASE) == 4 * WalkConfig().mem_access_cycles

    def test_stats_accumulate(self):
        w = PageWalker(WalkConfig())
        w.native_walk(BASE)
        w.native_walk(MID)
        assert w.walks == 2
        assert w.walk_cycles > 0
        w.reset_stats()
        assert w.walks == 0
