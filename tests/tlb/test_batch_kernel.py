"""The vectorized LRU kernel is byte-identical to the scalar TLB.

``lru_batch_lookup`` must reproduce the scalar lookup/insert loop exactly:
the same per-access hit/miss pattern, the same hit and miss counters, and
the same final per-set LRU ordering (dict key order, LRU first).  These
tests replay randomized and adversarial key streams through both paths
and compare everything — "close enough" is a bug, because the full-system
equivalence contract (``System.touch_batch`` vs the scalar loop) is built
on this kernel being exact.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.tlb.batch as batch_mod
from repro.config import TLBConfig
from repro.tlb.batch import _replay_scalar, lru_batch_lookup
from repro.tlb.tlb import SetAssocTLB


def scalar_reference(tlb: SetAssocTLB, keys: np.ndarray) -> np.ndarray:
    """The ground truth: the scalar lookup/insert-on-miss loop."""
    hits = np.zeros(len(keys), dtype=bool)
    for j, key in enumerate(keys.tolist()):
        if tlb.lookup(key):
            hits[j] = True
        else:
            tlb.insert(key)
    return hits


def warm(tlb: SetAssocTLB, keys) -> None:
    for key in keys:
        if not tlb.lookup(key):
            tlb.insert(int(key))
    tlb.hits = tlb.misses = 0


def assert_identical(
    a: SetAssocTLB, b: SetAssocTLB, ref: np.ndarray, got: np.ndarray
) -> None:
    np.testing.assert_array_equal(ref, got)
    assert a.hits == b.hits
    assert a.misses == b.misses
    for set_a, set_b in zip(a._sets, b._sets):
        assert list(set_a.keys()) == list(set_b.keys())


def run_case(keys, ways: int, sets: int, warm_keys=()) -> None:
    keys = np.asarray(keys, dtype=np.int64)
    cfg = TLBConfig(entries=sets * ways, ways=ways)
    a, b = SetAssocTLB(cfg), SetAssocTLB(cfg)
    warm(a, warm_keys)
    warm(b, warm_keys)
    ref = scalar_reference(a, keys)
    got = lru_batch_lookup(b, keys)
    assert_identical(a, b, ref, got)


def test_randomized_streams_match_scalar():
    """Randomized geometry × universe × length sweep, cold and warm."""
    rng = np.random.default_rng(12345)
    for _ in range(400):
        ways = int(rng.integers(1, 9))
        sets = int(rng.choice([1, 1, 2, 4, 8, 16]))
        universe = int(rng.choice([2, 3, 5, 8, 32, 200, 5000]))
        n = int(rng.choice([1, 3, 17, 100, 400, 2000]))
        keys = rng.integers(0, universe, size=n)
        warm_keys = rng.integers(
            0, universe, size=int(rng.integers(0, 3 * sets * ways + 1))
        )
        run_case(keys, ways, sets, warm_keys=warm_keys.tolist())


def test_zipf_like_heavy_duplication():
    """Mostly a handful of hot keys with a rare cold tail (the bench shape)."""
    rng = np.random.default_rng(77)
    for _ in range(60):
        ways = int(rng.integers(1, 9))
        sets = int(rng.choice([1, 2, 4, 16]))
        n = int(rng.integers(500, 4000))
        hot = rng.integers(0, 4, size=n)
        rare = rng.integers(0, 10000, size=n)
        keys = np.where(rng.random(n) < 0.02, rare, hot)
        run_case(keys, ways, sets)


@pytest.mark.parametrize("ways", [3, 4, 8])
@pytest.mark.parametrize("alt_len", [300, 5000])
def test_long_alternation_window(ways, alt_len):
    """A far recurrence across a huge window of only two distinct keys.

    Stack distance is 2 (a hit for ways >= 3) even though the raw window
    spans thousands of accesses — the case a positional-distance
    approximation would get wrong and a naive scan would spend O(window)
    on.
    """
    keys = [9] + [t % 2 for t in range(alt_len)] + [9]
    run_case(keys, ways, 1)


def test_repeated_far_windows_stress_budget():
    """Many far queries with long windows in one batch."""
    keys = []
    for blk in range(40):
        keys.append(100 + blk)
        keys.extend([blk * 2 % 7, blk * 3 % 7] * 400)
        keys.append(100 + blk)
    run_case(keys, 4, 1)


def test_budget_exhaustion_falls_back_to_replay(monkeypatch):
    """When the far scan gives up, the kernel detours to exact replay.

    ``_resolve_far`` returning False (its budget-exceeded signal) must
    hand the whole batch to ``_replay_scalar`` before any state was
    mutated, so the result is still exact.
    """
    monkeypatch.setattr(batch_mod, "_resolve_far", lambda *a, **kw: False)
    calls = []
    real_replay = batch_mod._replay_scalar

    def spy(tlb, keys):
        calls.append(len(keys))
        return real_replay(tlb, keys)

    monkeypatch.setattr(batch_mod, "_replay_scalar", spy)
    keys = []
    for blk in range(30):
        keys.append(1000 + blk)
        keys.extend([0, 1] * 200)
        keys.append(1000 + blk)
    run_case(keys, 4, 1, warm_keys=[7, 8, 9])
    assert calls, "_resolve_far giving up never triggered the scalar replay"


def test_replay_scalar_is_exact():
    """The fallback itself reproduces the scalar loop (incl. warm state)."""
    rng = np.random.default_rng(3)
    for _ in range(100):
        ways = int(rng.integers(1, 9))
        sets = int(rng.choice([1, 2, 4, 16]))
        n = int(rng.integers(1, 1500))
        universe = int(rng.choice([2, 8, 64, 3000]))
        keys = rng.integers(0, universe, size=n).astype(np.int64)
        cfg = TLBConfig(entries=sets * ways, ways=ways)
        a, b = SetAssocTLB(cfg), SetAssocTLB(cfg)
        warm_keys = rng.integers(0, universe, size=int(rng.integers(0, 2 * sets * ways)))
        warm(a, warm_keys.tolist())
        warm(b, warm_keys.tolist())
        ref = scalar_reference(a, keys)
        got = _replay_scalar(b, keys)
        assert_identical(a, b, ref, got)


def test_single_key_and_empty_edge_cases():
    run_case([], 2, 2)
    run_case([5], 1, 1)
    run_case([5, 5, 5, 5], 1, 1)
    # direct-mapped (ways=1): any intervening distinct key evicts
    run_case([1, 2, 1, 1, 2], 1, 1)
