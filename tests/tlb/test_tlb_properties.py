"""Property-based tests: the TLB against a reference LRU model."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.config import TLBConfig
from repro.tlb.tlb import SetAssocTLB


class ReferenceLRU:
    """Oracle: per-set LRU lists implemented naively."""

    def __init__(self, sets: int, ways: int):
        self.sets = [[] for _ in range(sets)]
        self.ways = ways

    def lookup(self, vpn: int) -> bool:
        s = self.sets[vpn % len(self.sets)]
        if vpn in s:
            s.remove(vpn)
            s.append(vpn)
            return True
        return False

    def insert(self, vpn: int) -> None:
        s = self.sets[vpn % len(self.sets)]
        if vpn in s:
            s.remove(vpn)
        elif len(s) >= self.ways:
            s.pop(0)
        s.append(vpn)

    def invalidate(self, vpn: int) -> bool:
        s = self.sets[vpn % len(self.sets)]
        if vpn in s:
            s.remove(vpn)
            return True
        return False


ops = st.lists(
    st.tuples(
        st.sampled_from(["lookup", "insert", "invalidate", "access"]),
        st.integers(0, 63),
    ),
    min_size=1,
    max_size=200,
)


@given(ops, st.sampled_from([(8, 2), (16, 4), (4, 4), (8, 1)]))
@settings(max_examples=80)
def test_tlb_matches_reference_lru(operations, shape):
    entries, ways = shape
    tlb = SetAssocTLB(TLBConfig(entries, ways))
    ref = ReferenceLRU(entries // ways, ways)
    for op, vpn in operations:
        if op == "lookup":
            assert tlb.lookup(vpn) == ref.lookup(vpn)
        elif op == "insert":
            tlb.insert(vpn)
            ref.insert(vpn)
        elif op == "invalidate":
            assert tlb.invalidate(vpn) == ref.invalidate(vpn)
        else:  # access = lookup-then-fill, the hierarchy's pattern
            hit_t = tlb.lookup(vpn)
            hit_r = ref.lookup(vpn)
            assert hit_t == hit_r
            if not hit_t:
                tlb.insert(vpn)
                ref.insert(vpn)
    assert tlb.occupancy == sum(len(s) for s in ref.sets)


@given(st.lists(st.integers(0, 1000), min_size=1, max_size=300))
@settings(max_examples=50)
def test_occupancy_never_exceeds_capacity(vpns):
    tlb = SetAssocTLB(TLBConfig(16, 4))
    for vpn in vpns:
        tlb.insert(vpn)
        assert tlb.occupancy <= 16


@given(st.lists(st.integers(0, 30), min_size=1, max_size=100))
@settings(max_examples=50)
def test_hit_rate_monotone_with_capacity(vpns):
    """A strictly larger fully-associative TLB never hits less often."""
    small = SetAssocTLB(TLBConfig(4, 4))
    big = SetAssocTLB(TLBConfig(16, 16))
    hits_small = hits_big = 0
    for vpn in vpns:
        if small.lookup(vpn):
            hits_small += 1
        else:
            small.insert(vpn)
        if big.lookup(vpn):
            hits_big += 1
        else:
            big.insert(vpn)
    assert hits_big >= hits_small
