"""Tests for the TLB hierarchy and nested translation."""

import pytest

from repro.config import (
    SCALED_GEOMETRY,
    TLBConfig,
    TLBHierarchyConfig,
    WalkConfig,
)
from repro.tlb.hierarchy import TLBHierarchy
from repro.tlb.nested import NestedTranslationUnit
from repro.vm.pagetable import PageTable

G = SCALED_GEOMETRY
BASE, MID, LARGE = G.base_size, G.mid_size, G.large_size
LVL_BASE, LVL_MID, LVL_LARGE = 0, 1, 2  # geometry level indices
VA0 = 0x7000_0000_0000

TINY_TLB = TLBHierarchyConfig(
    l1_base=TLBConfig(4, 2),
    l1_mid=TLBConfig(4, 2),
    l1_large=TLBConfig(2, 2),
    l2_shared=TLBConfig(16, 4),
    l2_large=TLBConfig(4, 2),
)


def make_hierarchy(config=None):
    return TLBHierarchy(config or TLBHierarchyConfig(), WalkConfig(), G)


class TestTLBHierarchy:
    def test_first_access_walks_second_hits(self):
        h = make_hierarchy()
        t = PageTable(G)
        m = t.map_page(VA0, LVL_BASE, 0)
        c1 = h.access(VA0, m)
        c2 = h.access(VA0, m)
        assert c1 > 0
        assert c2 == 0.0
        assert h.stats.walks == 1
        assert h.stats.l1_hits == 1

    def test_access_sets_accessed_bit(self):
        h = make_hierarchy()
        t = PageTable(G)
        m = t.map_page(VA0, LVL_BASE, 0)
        assert not m.accessed
        h.access(VA0, m)
        assert m.accessed

    def test_l2_hit_cheaper_than_walk(self):
        h = make_hierarchy(TINY_TLB)
        t = PageTable(G)
        maps = [t.map_page(VA0 + i * BASE, LVL_BASE, i) for i in range(8)]
        # Touch enough pages in one L1 set's worth to evict from L1 but stay
        # in the bigger L2, then re-touch the first.
        for i, m in enumerate(maps):
            h.access(VA0 + i * BASE, m)
        cost = h.access(VA0, maps[0])
        assert 0 < cost <= WalkConfig().l2_tlb_hit_cycles

    def test_large_pages_cover_more_with_fewer_entries(self):
        h = make_hierarchy(TINY_TLB)
        t = PageTable(G)
        m = t.map_page(VA0, LVL_LARGE, 0)
        # Every base page inside one large page hits after the first walk.
        for i in range(20):
            h.access(VA0 + i * BASE, m)
        assert h.stats.walks == 1

    def test_base_mappings_thrash_where_large_do_not(self):
        footprint = 4 * MID
        # Same footprint, base vs large mappings, uniform sweep twice.
        t = PageTable(G)
        h_base = make_hierarchy(TINY_TLB)
        maps = {}
        for va in range(VA0, VA0 + footprint, BASE):
            maps[va] = t.map_page(va, LVL_BASE, (va - VA0) // BASE)
        for _ in range(2):
            for va in range(VA0, VA0 + footprint, BASE):
                h_base.access(va, maps[va])
        t2 = PageTable(G)
        h_large = make_hierarchy(TINY_TLB)
        m = t2.map_page(VA0, LVL_LARGE, 0)
        for _ in range(2):
            for va in range(VA0, VA0 + footprint, BASE):
                h_large.access(va, m)
        assert h_large.stats.walk_cycles < h_base.stats.walk_cycles / 10

    def test_invalidate_range_forces_rewalk(self):
        h = make_hierarchy()
        t = PageTable(G)
        m = t.map_page(VA0, LVL_MID, 0)
        h.access(VA0, m)
        h.invalidate_range(VA0, MID)
        c = h.access(VA0, m)
        assert c > 0
        assert h.stats.walks == 2

    def test_flush(self):
        h = make_hierarchy()
        t = PageTable(G)
        m = t.map_page(VA0, LVL_BASE, 0)
        h.access(VA0, m)
        h.flush()
        assert h.access(VA0, m) > 0

    def test_reset_stats(self):
        h = make_hierarchy()
        t = PageTable(G)
        m = t.map_page(VA0, LVL_BASE, 0)
        h.access(VA0, m)
        h.reset_stats()
        assert h.stats.accesses == 0
        assert h.stats.walk_cycles == 0


class TestNestedTranslation:
    def make_nested(self, guest_size, host_size):
        guest_table = PageTable(G)
        host_table = PageTable(G)
        gm = guest_table.map_page(VA0, guest_size, pfn=0)
        # Identity-ish host mapping of the guest-physical range at host_size.
        gpa_len = G.bytes_for(guest_size)
        for gpa in range(0, gpa_len, G.bytes_for(host_size)):
            host_table.map_page(gpa, host_size, pfn=gpa // G.base_size + 1000)
        unit = NestedTranslationUnit(TINY_TLB, WalkConfig(), G, host_table)
        return unit, gm

    def test_nested_walk_cost_ordering(self):
        costs = {}
        for size in (LVL_BASE, LVL_MID, LVL_LARGE):
            unit, gm = self.make_nested(size, size)
            costs[size] = unit.access(VA0, gm)
        assert costs[LVL_BASE] > costs[LVL_MID] > costs[LVL_LARGE]

    def test_effective_size_is_min_of_levels(self):
        # 1GB guest page over 4KB host pages: cached at 4KB granularity, so
        # the next base page misses again.
        unit, gm = self.make_nested(LVL_LARGE, LVL_BASE)
        unit.access(VA0, gm)
        unit.access(VA0 + BASE, gm)
        assert unit.stats.walks == 2
        # 1GB over 1GB: second base page hits.
        unit2, gm2 = self.make_nested(LVL_LARGE, LVL_LARGE)
        unit2.access(VA0, gm2)
        unit2.access(VA0 + BASE, gm2)
        assert unit2.stats.walks == 1

    def test_missing_host_mapping_raises(self):
        guest_table = PageTable(G)
        host_table = PageTable(G)
        gm = guest_table.map_page(VA0, LVL_BASE, pfn=0)
        unit = NestedTranslationUnit(TINY_TLB, WalkConfig(), G, host_table)
        with pytest.raises(LookupError):
            unit.access(VA0, gm)

    def test_sets_access_bits_at_both_levels(self):
        unit, gm = self.make_nested(LVL_MID, LVL_MID)
        unit.access(VA0, gm)
        assert gm.accessed
        hm = unit.host_table.translate(0)
        assert hm.accessed

    def test_invalidate_range(self):
        unit, gm = self.make_nested(LVL_MID, LVL_MID)
        unit.access(VA0, gm)
        unit.invalidate_range(VA0, MID)
        unit.access(VA0, gm)
        assert unit.stats.walks == 2
