"""Tests for seed replication."""

import pytest

from repro.analysis.replication import Replication, replicate


class TestReplicationStats:
    def test_mean_std_ci(self):
        r = Replication("w", "a", "b", [1.0, 1.2, 1.1, 1.3, 0.9])
        assert r.mean == pytest.approx(1.1)
        assert r.std > 0
        assert r.ci95_halfwidth > 0
        assert "1.100" in r.summary()

    def test_single_sample_degenerate(self):
        r = Replication("w", "a", "b", [1.5])
        assert r.std == 0.0
        assert r.ci95_halfwidth == 0.0


class TestReplicate:
    def test_replicate_small(self):
        r = replicate(
            "GUPS", "Trident", "2MB-THP", seeds=(1, 2), n_accesses=6_000
        )
        assert len(r.speedups) == 2
        # Trident beats THP on GUPS at every seed.
        assert all(s > 1.1 for s in r.speedups)
        # And the seeds agree within a reasonable spread.
        assert r.std < 0.2
