"""Benchmark: regenerate Figure 1 (native page-size study).

Paper shape: 2MB cuts walk cycles for everyone; the eight shaded
applications gain >= ~3% more from 1GB; THP tracks static 2MB hugetlbfs.
"""

from conftest import perf

from repro.experiments.figure1 import run
from repro.experiments.report import format_table
from repro.workloads.registry import SHADED_EIGHT

WORKLOADS = ("GUPS", "Canneal", "Redis", "XSBench", "CC", "CG")


def test_figure1(once):
    rows = once(run, workloads=WORKLOADS, n_accesses=40_000)
    print(format_table(rows, "Figure 1 (reduced)"))
    for row in rows:
        w = row["workload"]
        # 2MB always helps over 4KB.
        assert row["perf:2MB-THP"] > 1.0
        # THP is competitive with static 2MB hugetlbfs (within a few %).
        assert abs(row["perf:2MB-THP"] - row["perf:2MB-Hugetlbfs"]) < 0.12
        if w in SHADED_EIGHT:
            # Shaded apps gain from 1GB beyond 2MB.
            assert row["perf:1GB-Hugetlbfs"] > row["perf:2MB-THP"] * 1.02, w
        else:
            # Unshaded apps barely gain.
            assert row["perf:1GB-Hugetlbfs"] < row["perf:2MB-THP"] * 1.04, w
