"""Benchmarks: regenerate Figures 12 and 13 (virtualized evaluation).

Paper shapes: Trident at both levels beats THP at both levels (~+16% avg);
with fragmented gPA and a capped guest khugepaged, Trident-pv's copy-less
promotion adds up to ~10% more for the mid-heavy workloads and little for
the ones that promote 4KB straight to 1GB.
"""

from conftest import geomean_row

from repro.experiments.figure12 import run as run_f12
from repro.experiments.figure13 import run as run_f13
from repro.experiments.report import format_table

F12_WORKLOADS = ("GUPS", "Canneal", "SVM")
F13_WORKLOADS = ("GUPS", "XSBench", "Btree")


def test_figure12(once):
    rows = once(run_f12, workloads=F12_WORKLOADS, n_accesses=30_000)
    print(format_table(rows, "Figure 12 (reduced)"))
    for row in rows[:-1]:
        assert row["perf:Trident+Trident"] > 1.0, row["workload"]
        assert (
            row["perf:Trident+Trident"] >= row["perf:HawkEye+HawkEye"] * 0.98
        )
    mean = geomean_row(rows)
    assert mean["perf:Trident+Trident"] > 1.05


def test_figure13(once):
    rows = once(run_f13, workloads=F13_WORKLOADS, n_accesses=30_000)
    print(format_table(rows, "Figure 13 (reduced)"))
    by = {r["workload"]: r for r in rows}
    # Both Trident variants beat THP under fragmented gPA.
    for w in F13_WORKLOADS:
        assert by[w]["perf:Trident+Trident"] > 1.0
    # pv roughly matches copy-based Trident overall (the paper's +5% on the
    # mid-promotion-heavy set is only partially reproduced; see
    # EXPERIMENTS.md "Known deviations").
    assert by["GUPS"]["pv_vs_trident"] > 0.95
    mean = geomean_row(rows)
    assert mean["pv_vs_trident"] > 0.95
