"""Benchmark: regenerate Figure 11 (Trident component ablation).

Paper shapes: Trident-1Gonly loses to full Trident (and can lose to THP)
because 1GB-unmappable hot regions fall back to 4KB; Trident-NC equals
Trident without fragmentation and trails it with fragmentation.
"""

from repro.experiments.figure11 import run
from repro.experiments.report import format_table

WORKLOADS = ("GUPS", "Graph500", "SVM")


def test_figure11(once):
    rows = once(run, workloads=WORKLOADS, n_accesses=40_000)
    print(format_table(rows, "Figure 11 (reduced)"))
    unfrag = {r["workload"]: r for r in rows if r["state"] == "unfrag"}
    frag = {r["workload"]: r for r in rows if r["state"] == "frag"}
    for w in WORKLOADS:
        # All page sizes beat 1G-only everywhere.
        assert unfrag[w]["perf:Trident"] >= unfrag[w]["perf:Trident-1Gonly"], w
        # Without fragmentation, compaction never runs: NC == Trident.
        assert abs(unfrag[w]["perf:Trident"] - unfrag[w]["perf:Trident-NC"]) < 0.06
    # Graph500/SVM have hot 1GB-unmappable regions: 1G-only can trail THP.
    assert (
        unfrag["Graph500"]["perf:Trident-1Gonly"]
        < unfrag["Graph500"]["perf:Trident"]
    )
    # Under fragmentation smart compaction pays (geomean at least equal).
    g_frag = frag["geomean"]
    assert g_frag["perf:Trident"] >= g_frag["perf:Trident-NC"] - 0.02
