"""Benchmarks: regenerate Tables 3 and 4 (allocation mechanisms, failures).

Paper shapes (Table 3): pre-allocators get their 1GB pages from the fault
handler alone; incremental allocators need promotion; fragmentation cuts
1GB coverage, and smart compaction recovers at least as much as normal.
Table 4: under fragmentation, most fault-time 1GB attempts fail; promotion
fails less; Redis/Btree never attempt at fault time ("NA").
"""

from repro.experiments.report import format_table
from repro.experiments.table3 import run as run_t3
from repro.experiments.table4 import run as run_t4

T3_WORKLOADS = ("GUPS", "Redis", "Canneal")
T4_WORKLOADS = ("XSBench", "GUPS", "Redis", "Btree")


def test_table3(once):
    rows = once(run_t3, workloads=T3_WORKLOADS, n_accesses=25_000)
    print(format_table(rows, "Table 3 (reduced)"))
    by = {r["workload"]: r for r in rows}
    # GUPS pre-allocates: fault handler alone maps ~all of it with 1GB.
    assert by["GUPS"]["unfrag:pf_only:1GB"] > 28.0
    # Redis is incremental: fault-only maps (nearly) nothing with 1GB...
    assert by["Redis"]["unfrag:pf_only:1GB"] < 6.0
    # ...but promotion recovers tens of GB.
    assert by["Redis"]["unfrag:smart_compaction:1GB"] > 30.0
    for w, row in by.items():
        # Fragmentation never increases 1GB coverage.
        assert (
            row["frag:smart_compaction:1GB"]
            <= row["unfrag:smart_compaction:1GB"] + 1e-9
        )
        # Smart compaction >= normal compaction under fragmentation.
        assert (
            row["frag:smart_compaction:1GB"]
            >= row["frag:normal_compaction:1GB"] - 1e-9
        ), w


def test_table4(once):
    rows = once(run_t4, workloads=T4_WORKLOADS, n_accesses=25_000)
    print(format_table(rows, "Table 4 (reduced)"))
    by = {r["workload"]: r for r in rows}
    # Fault-time 1GB allocations mostly fail under fragmentation.
    assert by["XSBench"]["fault_fail_pct"] > 50
    assert by["GUPS"]["fault_fail_pct"] > 40
    # Redis and Btree (nearly) never attempt 1GB at fault time (Table 4
    # "NA"): Redis's heap grows too incrementally; Btree's reserve pools
    # leave a handful of accidental 1GB-mappable holes, still an order of
    # magnitude fewer attempts than the pre-allocating workloads.
    assert by["Redis"]["fault_attempts"] <= 3
    assert by["Btree"]["fault_attempts"] < by["XSBench"]["fault_attempts"] / 3
    # Promotion is attempted and fails less than faults for pre-allocators.
    assert by["XSBench"]["promo_attempts"] > 0
