"""Ablation benches for design choices DESIGN.md calls out.

Beyond the paper's own Figure 11 ablation, these cover:

* async vs sync zero-fill (the Section 5.1.2 latency claim, as a system-level
  effect on fault latency totals);
* hypercall batching factor (Section 6's batching design);
* smart compaction's source-selection rule (most-free-first vs arbitrary),
  isolating *why* smart compaction copies less.
"""

import random

from repro.config import CostModel, PageGeometry, X86_GEOMETRY
from repro.core.compaction import SmartCompactor
from repro.core.rmap import ReverseMap
from repro.experiments.runner import NativeRunner, RunConfig
from repro.mem.buddy import BuddyAllocator
from repro.mem.regions import RegionTracker


def test_async_zerofill_ablation(once):
    """Trident's large-fault latency with and without the zero-fill pool."""

    def run():
        out = {}
        for policy in ("Trident", "Trident-PFonly"):
            metrics = NativeRunner(
                RunConfig("GUPS", policy, n_accesses=10_000, machine_regions=64)
            ).run()
            out[policy] = metrics
        return out

    out = once(run)
    m = out["Trident"]
    # The pool converts most large faults into ~2.7 ms mapped faults; the
    # average large-fault latency sits far below the ~400 ms sync cost.
    large_faults = m.fault_mapped[2]
    assert large_faults > 0
    avg_fault_ns = m.fault_ns / max(1, sum(m.fault_mapped.values()))
    sync_ns = CostModel().scaled_for(
        NativeRunner(RunConfig("GUPS", "4KB", n_accesses=1)).machine.geometry
    ).zero_ns(NativeRunner(RunConfig("GUPS", "4KB", n_accesses=1)).machine.geometry.large_size)
    assert avg_fault_ns < sync_ns


def test_hypercall_batching_sweep(once):
    """Batched exchange latency falls monotonically with batch size."""
    from repro.virt.hypercall import PVExchangeInterface

    def run():
        cost = CostModel()
        exchanges = X86_GEOMETRY.mids_per_large
        results = {}
        for batch in (1, 4, 32, 128, 512):
            calls = -(-exchanges // batch)
            results[batch] = (
                calls * cost.hypercall_ns + exchanges * cost.exchange_batched_ns
            )
        results["unbatched"] = exchanges * (
            cost.hypercall_ns + cost.exchange_unbatched_ns
        )
        results["copy"] = cost.copy_ns(X86_GEOMETRY.large_size)
        return results

    results = once(run)
    latencies = [results[b] for b in (1, 4, 32, 128, 512)]
    assert latencies == sorted(latencies, reverse=True)
    assert results[512] < results["unbatched"] < results["copy"]


def test_smart_source_selection_ablation(once):
    """Most-free-first source selection is what cuts the copy volume."""
    GEOM = PageGeometry(base_shift=12, mid_order=2, large_order=6)

    class Owner:
        def relocate(self, old, new, order):
            pass

    def build(seed):
        total = 8 * GEOM.frames_per_large
        tracker = RegionTracker(total, GEOM)
        buddy = BuddyAllocator(total, GEOM.large_order, listeners=(tracker,))
        rmap = ReverseMap()
        rng = random.Random(seed)
        pfns = [buddy.alloc(0) for _ in range(total)]
        rng.shuffle(pfns)
        for pfn in pfns[total // 2 :]:
            buddy.free(pfn)
        owner = Owner()
        for pfn in pfns[: total // 2]:
            rmap.register(pfn, 0, owner)
        return buddy, tracker, rmap

    class ArbitrarySourceCompactor(SmartCompactor):
        """Smart mechanics but picks sources in address order (ablated)."""

        def compact(self, order, budget_ns=float("inf"), max_sources=8):
            from repro.core.compaction import CompactionResult

            result = CompactionResult(success=False)
            if self.buddy.has_free_block(order):
                result.success = True
                return result
            tried = 0
            for source in sorted(self.regions.best_source_regions()):
                if tried >= max_sources:
                    break
                tried += 1
                if self._evacuate_selected(source, result, budget_ns):
                    if self.buddy.has_free_block(order):
                        result.success = True
                        break
            self.stats.record(result)
            return result

    def run():
        out = {}
        for cls in (SmartCompactor, ArbitrarySourceCompactor):
            buddy, tracker, rmap = build(seed=9)
            compactor = cls(buddy, tracker, rmap, GEOM, CostModel())
            res = compactor.compact(GEOM.large_order)
            out[cls.__name__] = res.bytes_copied if res.success else None
        return out

    out = once(run)
    if out["SmartCompactor"] is not None and out["ArbitrarySourceCompactor"] is not None:
        assert out["SmartCompactor"] <= out["ArbitrarySourceCompactor"]
