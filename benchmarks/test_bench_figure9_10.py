"""Benchmarks: regenerate Figures 9 and 10 (THP vs HawkEye vs Trident).

Paper shapes: Trident beats THP on every shaded workload — ~+14% average
unfragmented, ~+18% fragmented (GUPS ~+50%) — and beats HawkEye everywhere;
under fragmentation HawkEye can dip below THP.
"""

from conftest import geomean_row

from repro.experiments.figure9 import run as run_f9
from repro.experiments.figure10 import run as run_f10
from repro.experiments.report import format_table

WORKLOADS = ("GUPS", "Canneal", "XSBench", "Redis")


def test_figure9(once):
    rows = once(run_f9, workloads=WORKLOADS, n_accesses=40_000)
    print(format_table(rows, "Figure 9 (reduced)"))
    for row in rows[:-1]:
        assert row["perf:Trident"] > 1.0, row["workload"]
        assert row["perf:Trident"] >= row["perf:HawkEye"] * 0.98
        assert row["walk_frac:Trident"] < row["walk_frac:2MB-THP"]
    mean = geomean_row(rows)
    assert 1.05 < mean["perf:Trident"] < 1.45


def test_figure10(once):
    rows = once(run_f10, workloads=WORKLOADS, n_accesses=40_000)
    print(format_table(rows, "Figure 10 (reduced)"))
    for row in rows[:-1]:
        assert row["perf:Trident"] > 1.0, row["workload"]
    mean = geomean_row(rows)
    # Fragmented: Trident's edge persists (paper: +18% average).
    assert mean["perf:Trident"] > 1.04
