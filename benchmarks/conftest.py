"""Shared helpers for the per-figure benchmark harness.

Each benchmark regenerates one of the paper's tables/figures at reduced
sample size (fewer simulated accesses per run; same workloads, same
policies, same machinery) and prints the rows the paper reports.  Shapes —
who wins, roughly by how much, where crossovers fall — are asserted; exact
numbers are expected to differ from the paper's testbed.

Run with ``pytest benchmarks/ --benchmark-only``.
"""

import pytest


@pytest.fixture
def once(benchmark):
    """Run the experiment exactly once under pytest-benchmark timing."""

    def _run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return _run


def perf(rows, workload, config):
    row = next(r for r in rows if r["workload"] == workload)
    return row[f"perf:{config}"]


def geomean_row(rows):
    return next(r for r in rows if r["workload"] == "geomean")
