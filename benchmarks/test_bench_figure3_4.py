"""Benchmarks: regenerate Figures 3 and 4 (mappability and miss-frequency).

Paper shapes: GBs of memory are 2MB- but not 1GB-mappable for Graph500 and
SVM, and those 1GB-unmappable regions are disproportionately hot (the
Graph500 frontier spike).
"""

from repro.experiments.figure3 import run as run_f3
from repro.experiments.figure4 import run as run_f4
from repro.experiments.report import format_table


def test_figure3(once):
    rows = once(run_f3)
    print(format_table(rows, "Figure 3 (mappable GB over time)"))
    for workload in ("Graph500", "SVM"):
        wrows = [r for r in rows if r["workload"] == workload]
        # Mid mappability always dominates large mappability.
        assert all(r["mid_mappable_gb"] >= r["large_mappable_gb"] for r in wrows)
        # By the end of setup a multi-GB gap exists (paper: several GB).
        assert wrows[-1]["gap_gb"] > 1.0, workload


def test_figure4(once):
    rows = once(run_f4, n_accesses=30_000, sample_chunks=10)
    print(format_table(rows, "Figure 4 (miss share by region class)"))
    g500 = [r for r in rows if r["workload"] == "Graph500"]
    mid_density = max(
        (r["miss_per_gb"] for r in g500 if r["class"] == "mid"), default=0.0
    )
    large_density = max(
        (r["miss_per_gb"] for r in g500 if r["class"] == "large"), default=0.0
    )
    # The circled Figure 4a spike: the hot 1GB-unmappable frontier has a far
    # higher miss density than any 1GB-mappable region.
    assert mid_density > 2 * large_density
