"""Benchmark: regenerate Figure 2 (virtualized page-size study).

Paper shape: two translation levels amplify the value of large pages;
1GB+1GB beats 2MB+2MB clearly for the shaded applications.
"""

from repro.experiments.figure2 import run
from repro.experiments.report import format_table

WORKLOADS = ("GUPS", "Canneal", "XSBench", "PR")


def test_figure2(once):
    rows = once(run, workloads=WORKLOADS, n_accesses=30_000)
    print(format_table(rows, "Figure 2 (reduced)"))
    for row in rows:
        assert row["perf:2MB+2MB"] > 1.0
        assert row["walk_frac:1GB+1GB"] < row["walk_frac:2MB+2MB"]
        if row["workload"] in ("GUPS", "Canneal"):
            assert row["perf:1GB+1GB"] > row["perf:2MB+2MB"] * 1.1
