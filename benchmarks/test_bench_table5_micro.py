"""Benchmarks: Table 5 (tail latency) and the Section 5/6 latency micros.

Paper shapes: Trident does not hurt p99 relative to 4KB or THP, because
zeroing/compaction/promotion run off the request path; the microbenchmark
latencies land on the paper's quoted numbers by construction of the cost
model (400 ms -> 2.7 ms fault; 600 ms -> 30 ms -> 500 us promotion).
"""

from repro.experiments.latency_micro import run as run_micro
from repro.experiments.report import format_table
from repro.experiments.table5 import run as run_t5


def test_table5(once):
    rows = once(run_t5, workloads=("Redis",), n_accesses=30_000)
    print(format_table(rows, "Table 5 (reduced)"))
    for row in rows:
        # Trident's tail stays within 15% of both baselines (paper: at or
        # below them).
        assert row["p99_us:Trident"] <= row["p99_us:4KB"] * 1.15
        assert row["p99_us:Trident"] <= row["p99_us:2MB-THP"] * 1.15


def test_latency_micro(once):
    rows = once(run_micro)
    print(format_table(rows, "Latency microbenchmarks"))
    by = {r["metric"]: r["measured"] for r in rows}
    assert 300 < by["1GB fault, sync zero (ms)"] < 500
    assert 2 < by["1GB fault, async pool (ms)"] < 4
    assert 500 < by["1GB promotion, copy (ms)"] < 700
    assert 25 < by["1GB promotion, pv unbatched (ms)"] < 35
    assert 400 < by["1GB promotion, pv batched (us)"] < 600
    # The ordering chain the paper's Section 6 rests on.
    assert (
        by["1GB promotion, pv batched (us)"] / 1000
        < by["1GB promotion, pv unbatched (ms)"]
        < by["1GB promotion, copy (ms)"]
    )


def test_bloat(once):
    from repro.experiments.bloat import run as run_bloat

    rows = once(run_bloat, workloads=("Memcached",), n_accesses=25_000)
    print(format_table(rows, "Memory bloat (reduced)"))
    row = rows[0]
    # Trident bloats Memcached beyond THP (paper: +38GB)...
    assert row["trident_over_thp_gb"] > 1.0
    # ...and HawkEye's recovery keeps bloat below Trident's.
    assert row["bloat_gb:HawkEye"] < row["bloat_gb:Trident"]
