"""Benchmark: regenerate Figure 7 (bytes copied, smart vs normal compaction).

Paper shape: smart compaction copies up to ~85% fewer bytes; XSBench
improves least because it uses most of physical memory.
"""

from repro.experiments.figure7 import run
from repro.experiments.report import format_table

WORKLOADS = ("GUPS", "SVM", "Btree", "XSBench")


def test_figure7(once):
    rows = once(run, workloads=WORKLOADS, n_accesses=25_000)
    print(format_table(rows, "Figure 7 (reduced)"))
    by = {r["workload"]: r for r in rows}
    compacting = [r for r in rows if r["normal_bytes_copied_mb"] > 0]
    assert compacting, "fragmented runs should trigger compaction"
    for row in compacting:
        # Smart compaction never copies more than normal for the same work.
        assert row["reduction_pct"] >= -5.0, row["workload"]
    # At least one workload shows a strong reduction (paper: up to 85%;
    # Btree is our strongest case).
    assert max(r["reduction_pct"] for r in compacting) > 30.0
