"""Trident in a VM, and Trident-pv's copy-less promotion (Section 6).

Builds a full two-level setup — a guest OS with its own buddy allocator and
policies, a KVM-like hypervisor backing guest-physical memory through the
host's policy — fragments *guest-physical* memory, caps the guest's
khugepaged at ~10% of a vCPU, and compares how quickly plain Trident vs
Trident-pv re-assembles 1GB pages.  The pv variant swaps gPA->hPA mappings
through a batched hypercall instead of copying 2MB chunks.

    python examples/virtualized_pv.py
"""

import numpy as np

from repro.config import PageSize
from repro.experiments.runner import VirtRunConfig, VirtRunner


def run(label: str, pv: bool):
    runner = VirtRunner(
        VirtRunConfig(
            workload="GUPS",
            guest_policy="Trident",
            host_policy="Trident",
            pv=pv,
            guest_fragmented=True,
            guest_daemon_budget_ns=200_000.0,  # ~10% of a vCPU
            n_accesses=40_000,
        )
    )
    metrics = runner.run()
    guest = runner.vm.guest
    mapped = metrics.mapped_bytes_by_size
    print(
        f"{label:12s} 1GB-mapped={mapped[PageSize.LARGE] >> 20:4d}M  "
        f"walk-frac={metrics.walk_cycle_fraction:.3f}  "
        f"daemon={metrics.daemon_ns / 1e6:8.1f} ms"
    )
    if pv:
        policy = guest.policy
        print(
            f"{'':12s} pv promotions={policy.pv_promotions}, "
            f"hypercalls={policy.pv.hypercalls}, "
            f"exchanges={policy.pv.exchanges}, "
            f"hypercall time={policy.pv.time_ns / 1e6:.2f} ms"
        )
    return metrics


def main() -> None:
    print("GUPS in a VM, fragmented guest-physical memory, capped khugepaged\n")
    copy = run("Trident", pv=False)
    pv = run("Trident-pv", pv=True)
    gain = copy.runtime_ns / pv.runtime_ns
    print(
        f"\nTrident-pv vs Trident: {(gain - 1) * 100:+.1f}% "
        "(paper: up to +10% for mid-promotion-heavy workloads)"
    )


if __name__ == "__main__":
    main()
