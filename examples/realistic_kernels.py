"""Structural vs statistical access streams on identical footprints.

The evaluation workloads model access behaviour statistically (zipf,
uniform, pointer-chase).  This example cross-checks that choice: it builds
a *real* B+tree and a *real* chained hash index over the same footprints
and compares the TLB behaviour of their structural address streams against
the statistical stand-ins, under 4KB and under Trident-style 1GB mappings.

    python examples/realistic_kernels.py
"""

import numpy as np

from repro.config import SCALED_GEOMETRY, SCALED_TLB, PageSize, WalkConfig
from repro.tlb.hierarchy import TLBHierarchy
from repro.vm.pagetable import PageTable
from repro.workloads import access
from repro.workloads.kernels import BPlusTree, HashIndex

GEOM = SCALED_GEOMETRY
BASE_VA = 0x7000_0000_0000
FOOTPRINT = 96 << 20  # 96MB (a "24GB" paper-scale structure)
N_LOOKUPS = 6_000


def measure(stream: np.ndarray, page_size: int) -> tuple[float, float]:
    """(TLB miss rate, walk cycles per access) for a stream."""
    table = PageTable(GEOM)
    step = GEOM.bytes_for(page_size)
    for va in range(BASE_VA, BASE_VA + FOOTPRINT, step):
        table.map_page(va, page_size, (va - BASE_VA) // GEOM.base_size)
    tlb = TLBHierarchy(SCALED_TLB, WalkConfig(), GEOM)
    for va in stream:
        tlb.access(int(va), table.translate(int(va)))
    stats = tlb.stats
    return stats.walks / stats.accesses, stats.walk_cycles / stats.accesses


def main() -> None:
    rng = np.random.default_rng(7)
    keys = rng.integers(0, 1 << 40, N_LOOKUPS)

    tree = BPlusTree(BASE_VA, FOOTPRINT)
    hash_index = HashIndex(
        bucket_base=BASE_VA,
        entry_base=BASE_VA + FOOTPRINT // 8,
        value_base=BASE_VA + FOOTPRINT // 2,
        n_buckets=1 << 14,
        n_entries=1 << 17,
        value_bytes=256,
        rng=rng,
    )

    streams = {
        "B+tree descents (structural)": tree.lookup_stream(keys),
        "pointer-chase (statistical)": access.pointer_chase(
            rng, BASE_VA, FOOTPRINT, N_LOOKUPS * tree.height, node=256
        ),
        "hash gets (structural)": hash_index.get_stream(keys),
        "zipf keys (statistical)": access.zipf(
            rng, BASE_VA, FOOTPRINT, N_LOOKUPS * 4, alpha=1.2
        ),
    }

    print(f"{'stream':34s} {'4KB miss':>9s} {'4KB cyc':>8s} {'1GB miss':>9s} {'1GB cyc':>8s}")
    for name, stream in streams.items():
        m4, c4 = measure(stream, PageSize.BASE)
        m1, c1 = measure(stream, PageSize.LARGE)
        print(f"{name:34s} {m4:9.3f} {c4:8.1f} {m1:9.3f} {c1:8.1f}")

    print(
        "\nStructural streams show the same qualitative TLB behaviour as the"
        "\nstatistical models the figures are calibrated on: heavy misses at"
        "\n4KB, near-elimination at 1GB-class pages — with the B+tree's hot"
        "\nroot/inner levels giving it a softer 4KB miss rate than a pure"
        "\nchase, exactly as on real hardware."
    )


if __name__ == "__main__":
    main()
