"""Quickstart: run one workload under THP and Trident and compare.

This is the 5-minute tour of the library: build a simulated machine, pick
an OS memory policy, run a paper workload on it, and read the translation
counters — the same path every figure in the evaluation uses.

    python examples/quickstart.py
"""

from repro.config import PageSize
from repro.experiments.runner import NativeRunner, RunConfig


def main() -> None:
    results = {}
    for policy in ("4KB", "2MB-THP", "Trident"):
        print(f"running GUPS under {policy} ...")
        runner = NativeRunner(
            RunConfig(workload="GUPS", policy=policy, n_accesses=60_000)
        )
        results[policy] = runner.run()

    base = results["4KB"]
    print()
    print(f"{'policy':12s} {'walk-cycle frac':>16s} {'perf vs 4KB':>12s} "
          f"{'1GB-class':>10s} {'2MB-class':>10s} {'4KB':>8s}")
    for policy, m in results.items():
        mapped = m.mapped_bytes_by_size
        print(
            f"{policy:12s} {m.walk_cycle_fraction:16.3f} "
            f"{m.speedup_over(base):12.2f} "
            f"{mapped[PageSize.LARGE] >> 20:9d}M "
            f"{mapped[PageSize.MID] >> 20:9d}M "
            f"{mapped[PageSize.BASE] >> 20:7d}M"
        )

    trident, thp = results["Trident"], results["2MB-THP"]
    print(
        f"\nTrident speeds up GUPS by "
        f"{(thp.runtime_ns / trident.runtime_ns - 1) * 100:.1f}% over THP "
        "(paper: +47%)"
    )


if __name__ == "__main__":
    main()
