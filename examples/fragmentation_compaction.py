"""Smart vs normal compaction on fragmented physical memory.

The paper's Figure 6/7 story, hands-on: fragment a machine to FMFI ~0.95,
then ask each compactor to produce 1GB-contiguous chunks and compare the
bytes they copy.  Smart compaction *selects* its source region by the
per-region free/unmovable counters instead of scanning sequentially, so it
copies far less and never wastes copies on regions with unmovable pages.

    python examples/fragmentation_compaction.py
"""

from repro.config import default_machine
from repro.core.baseline4k import Baseline4KPolicy
from repro.core.compaction import NormalCompactor, SmartCompactor
from repro.sim.system import System


def fragmented_system(seed: int) -> System:
    system = System(default_machine(48), Baseline4KPolicy, seed=seed)
    index = system.fragment(residual_fraction=0.45)
    print(f"  fragmented: FMFI={index:.2f}, free={system.buddy.free_frames} frames")
    return system


def drive(compactor_cls, label: str, seed: int = 11) -> None:
    system = fragmented_system(seed)
    compactor = compactor_cls(
        system.buddy, system.regions, system.rmap, system.geometry, system.cost
    )
    order = system.geometry.large_order
    chunks = 0
    while chunks < 8:
        result = compactor.compact(order)
        if not result.success:
            break
        # Consume the chunk so the next attempt must create another.
        system.buddy.alloc(order)
        chunks += 1
    s = compactor.stats
    print(
        f"  {label:18s} chunks={chunks}  copied={s.bytes_copied >> 20:4d} MB  "
        f"wasted={s.wasted_bytes >> 20} MB  scanned={s.frames_scanned} frames  "
        f"time={s.time_ns / 1e6:.1f} ms"
    )


def main() -> None:
    print("normal (sequential-scan) compaction:")
    drive(NormalCompactor, "normal")
    print("\nsmart (counter-guided) compaction:")
    drive(SmartCompactor, "smart")
    print(
        "\nSmart compaction evacuates the emptiest unmovable-free regions, so"
        "\nit copies a fraction of the bytes for the same number of chunks"
        "\n(Figure 7: up to 85% fewer bytes copied)."
    )


if __name__ == "__main__":
    main()
