"""Watch khugepaged promote an incrementally-grown key-value store heap.

Redis grows its heap slab by slab while inserting keys, so the page-fault
handler never sees a 1GB-mappable range (Table 3: 0 GB from faults alone).
This example shows the other half of Trident: the background daemon scans
the merged heap extent, finds 1GB-mappable ranges mapped with smaller
pages, and promotes them — while the "application" keeps serving requests
whose tail latency we sample (Table 5's property: promotion stays off the
request path).

    python examples/kvstore_promotion.py
"""

import numpy as np

from repro.config import SCALE_FACTOR, PageSize, default_machine
from repro.core.trident import TridentPolicy
from repro.sim.system import System
from repro.workloads.registry import get_workload


def gb(nbytes: int) -> float:
    return nbytes * SCALE_FACTOR / (1 << 30)


def main() -> None:
    workload = get_workload("Redis")
    regions = int(workload.footprint_bytes * 1.6) // default_machine(1).geometry.large_size
    system = System(default_machine(regions), TridentPolicy, seed=1)
    process = system.create_process("redis")

    class API:
        rng = np.random.default_rng(1)

        def mmap(self, nbytes, kind="heap"):
            return system.sys_mmap(process, nbytes, kind)

        def munmap(self, addr):
            system.sys_munmap(process, addr)

        def touch(self, addresses):
            system.touch_batch(process, addresses)

        def phase(self, label):
            pass

    api = API()
    print("insert phase (incremental heap growth) ...")
    workload.setup(api)
    mapped = system.mapped_bytes_by_size(process)
    print(
        f"after inserts:   1GB-mapped {gb(mapped[PageSize.LARGE]):6.1f} GB   "
        f"2MB-mapped {gb(mapped[PageSize.MID]):6.1f} GB   "
        f"(faults alone cannot use 1GB pages here)"
    )

    print("\nserving requests while khugepaged promotes in the background ...")
    stream = workload.access_stream(api, 40_000)
    stats = process.tlb.stats
    for step, chunk in enumerate(np.array_split(stream, 8)):
        c0, w0 = stats.translation_cycles, stats.accesses
        system.touch_batch(process, chunk)
        # An idle gap between request bursts: khugepaged gets real CPU time
        # (a 1GB-class promotion costs ~600 ms of copying).
        system.settle(3, budget_ns=1e9)
        mapped = system.mapped_bytes_by_size(process)
        cpa = (stats.translation_cycles - c0) / max(stats.accesses - w0, 1)
        print(
            f"  step {step}: 1GB {gb(mapped[PageSize.LARGE]):6.1f} GB | "
            f"2MB {gb(mapped[PageSize.MID]):6.1f} GB | "
            f"translation {cpa:6.1f} cyc/access"
        )

    promoted = system.policy.stats.promoted
    print(
        f"\npromotions: {promoted[PageSize.LARGE]} to 1GB-class, "
        f"{promoted[PageSize.MID]} to 2MB-class; "
        f"copy traffic {system.policy.stats.promo_copy_bytes >> 20} MB"
    )


if __name__ == "__main__":
    main()
